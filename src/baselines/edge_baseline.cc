#include "baselines/edge_baseline.h"

#include "common/logging.h"
#include "lsmerkle/merge.h"

namespace wedge {

// ------------------------------------------------------------------ cloud

EbCloud::EbCloud(Executor* exec, Transport* net, const KeyStore* keystore,
                 Signer signer, Dc location, LsmConfig lsm_config,
                 CostModel costs)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      location_(location),
      lsm_config_(lsm_config),
      costs_(costs),
      merge_lane_(exec->MakeLane()) {}

void EbCloud::OnMessage(NodeId from, Slice payload, SimTime now) {
  auto env = opener_.Open(payload);
  if (!env.ok()) return;
  if (env->type != MsgType::kEbCertify) return;
  if (!keystore_->HasRole(from, Role::kEdge)) return;
  auto msg = EbCertify::Decode(env->body);
  if (!msg.ok()) return;
  const SimTime cost = costs_.CloudMerge(msg->block.ByteSize());
  merge_lane_->Execute(cost, [this, from, m = std::move(*msg)]() mutable {
    HandleCertify(from, std::move(m), exec_->Now());
  });
  (void)now;
}

void EbCloud::HandleCertify(NodeId edge, EbCertify msg, SimTime now) {
  auto [it, inserted] = edges_.try_emplace(edge, lsm_config_);
  EdgeState& state = it->second;

  EbCertifyResponse resp;
  resp.block_cert = BlockCertificate::Make(signer_, edge, msg.block.id,
                                           msg.block.Digest(), now);
  blocks_certified_++;

  // Every block enters the authoritative mLSM (kv-ness is content-
  // defined; raw appends become pair-less L0 units that keep the block
  // id stream contiguous for read proofs).
  if (auto st = state.tree.ApplyBlock(msg.block); !st.ok()) {
    WLOG_WARN << "eb-cloud: apply failed: " << st;
    return;
  }

  // Cascade merges locally; each one adds transfer bytes to the response
  // (the bandwidth amplification WedgeChain avoids).
  size_t merge_bytes = 0;
  while (auto lvl = state.tree.NeedsMerge()) {
    std::vector<KvPair> newer;
    size_t consumed_l0 = 0;
    if (*lvl == 0) {
      consumed_l0 = state.tree.l0_count();
      for (const auto& unit : state.tree.l0_units()) {
        for (const auto& p : unit.pairs) newer.push_back(p);
      }
    } else {
      for (const auto& page : state.tree.level(*lvl).pages()) {
        for (const auto& p : page.pairs) newer.push_back(p);
      }
    }
    auto merged = MergeIntoPages(std::move(newer),
                                 *lvl + 1 < state.tree.level_count()
                                     ? state.tree.level(*lvl + 1).pages()
                                     : std::vector<Page>{},
                                 lsm_config_.target_page_pairs, now);
    if (!merged.ok()) {
      WLOG_WARN << "eb-cloud: merge failed: " << merged.status();
      return;
    }
    EbCertifyResponse::AppliedMerge am;
    am.from_level = static_cast<uint32_t>(*lvl);
    am.consumed_l0 = static_cast<uint32_t>(consumed_l0);
    am.merged = *merged;
    for (const auto& p : am.merged) merge_bytes += p.ByteSize();
    if (auto st = state.tree.InstallMergeRaw(*lvl, consumed_l0,
                                             std::move(*merged));
        !st.ok()) {
      WLOG_WARN << "eb-cloud: install failed: " << st;
      return;
    }
    merges_performed_++;
    resp.merges.push_back(std::move(am));
  }

  // Re-sign the root after every write (vanilla Merkle-style publication;
  // the root covers the post-merge state).
  state.epoch++;
  state.tree.set_epoch(state.epoch);
  resp.root_cert = RootCertificate::Make(
      signer_, edge, state.epoch,
      ComputeGlobalRoot(state.epoch, state.tree.LevelRoots()), now);
  (void)merge_bytes;  // transfer cost is paid on the wire (response size)

  net_->Send(id(), edge, sealer_.Seal(edge, MsgType::kEbCertifyResponse, resp.Encode()));
}

// ------------------------------------------------------------------- edge

EbEdge::EbEdge(Executor* exec, Transport* net, const KeyStore* keystore,
               Signer signer, NodeId cloud, Dc location, EdgeConfig config,
               CostModel costs)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      cloud_(cloud),
      location_(location),
      config_(config),
      costs_(costs),
      fg_(exec->MakeLane()),
      lsm_(config.lsm) {}

void EbEdge::OnMessage(NodeId from, Slice payload, SimTime now) {
  auto env = opener_.Open(payload);
  if (!env.ok()) return;
  switch (env->type) {
    case MsgType::kEbWriteRequest: {
      auto req = AddRequest::Decode(env->body);
      if (!req.ok()) return;
      // Writes are admitted immediately: edge-side processing pipelines.
      const SimTime serial = costs_.EdgeBatchSerial(req->entries.size());
      fg_->ExecuteAfter(serial, costs_.edge_batch_parallel,
                        [this, from, r = std::move(*req)]() mutable {
                          HandleWrite(from, std::move(r), exec_->Now());
                        });
      break;
    }
    case MsgType::kReadRequest: {
      auto req = ReadRequest::Decode(env->body);
      if (!req.ok()) return;
      DeferOrRun([this, from, r = *req] {
        fg_->Execute(costs_.edge_read_serial, [this, from, r] {
          HandleReadBlock(from, r, exec_->Now());
        });
      });
      break;
    }
    case MsgType::kGetRequest: {
      auto req = GetRequest::Decode(env->body);
      if (!req.ok()) return;
      DeferOrRun([this, from, r = *req] {
        fg_->Execute(costs_.edge_read_serial, [this, from, r] {
          HandleGet(from, r, exec_->Now());
        });
      });
      break;
    }
    case MsgType::kScanRequest: {
      auto req = ScanRequest::Decode(env->body);
      if (!req.ok()) return;
      DeferOrRun([this, from, r = *req] {
        fg_->Execute(costs_.edge_read_serial, [this, from, r] {
          HandleScan(from, r, exec_->Now());
        });
      });
      break;
    }
    case MsgType::kEbCertifyResponse: {
      if (from != cloud_) return;
      auto resp = EbCertifyResponse::Decode(env->body);
      if (!resp.ok()) return;
      // Installing the returned pages costs CPU proportional to bytes.
      const SimTime cost = costs_.EbInstall(resp->ByteSize());
      fg_->Execute(cost, [this, r = std::move(*resp)]() mutable {
        HandleCertifyResponse(std::move(r), exec_->Now());
      });
      break;
    }
    default:
      break;
  }
  (void)now;
}

void EbEdge::HandleWrite(NodeId from, AddRequest req, SimTime now) {
  Block block;
  block.id = next_bid_++;
  block.created_at = now;
  for (const Entry& e : req.entries) {
    if (e.client != from || !e.Validate(*keystore_).ok()) continue;
    block.entries.push_back(e);
  }
  certify_queue_.push_back(PendingWrite{from, req.req_id, std::move(block)});
  TrySendNextCertify();
}

void EbEdge::DeferOrRun(std::function<void()> work) {
  if (certify_in_flight_) {
    deferred_reads_.push_back(std::move(work));
  } else {
    work();
  }
}

void EbEdge::TrySendNextCertify() {
  if (certify_in_flight_ || certify_queue_.empty()) return;
  certify_in_flight_ = true;
  in_flight_ = std::move(certify_queue_.front());
  certify_queue_.pop_front();
  EbCertify msg;
  msg.block = in_flight_->block;
  net_->Send(id(), cloud_, sealer_.Seal(cloud_, MsgType::kEbCertify, msg.Encode()));
}

void EbEdge::HandleCertifyResponse(EbCertifyResponse resp, SimTime now) {
  if (!in_flight_.has_value()) return;
  if (resp.block_cert.bid != in_flight_->block.id) return;
  PendingWrite pending = std::move(*in_flight_);
  in_flight_.reset();

  if (!resp.block_cert.Validate(*keystore_).ok()) {
    WLOG_WARN << "eb-edge: invalid block certificate";
    certify_in_flight_ = false;
    DrainDeferredReads();
    TrySendNextCertify();
    return;
  }

  // Mirror the cloud's state transitions: block first, then the merges it
  // triggered, then the fresh root certificate.
  (void)log_.Append(pending.block);
  (void)log_.SetCertificate(resp.block_cert);
  if (auto st = lsm_.ApplyBlock(pending.block); !st.ok()) {
    WLOG_WARN << "eb-edge: apply failed: " << st;
  }
  writes_committed_++;

  for (auto& am : resp.merges) {
    if (auto st = lsm_.InstallMergeRaw(am.from_level, am.consumed_l0,
                                       std::move(am.merged));
        !st.ok()) {
      WLOG_WARN << "eb-edge: install failed: " << st;
    }
  }
  if (auto st = lsm_.SetEpochAndCert(resp.root_cert); !st.ok()) {
    WLOG_WARN << "eb-edge: root cert mismatch: " << st;
  }

  AddResponse ack;
  ack.req_id = pending.req_id;
  ack.bid = pending.block.id;
  net_->Send(id(), pending.client, sealer_.Seal(pending.client, MsgType::kEbWriteResponse, ack.Encode()));

  certify_in_flight_ = false;
  // Deferred reads run against the freshly installed state; the next
  // queued certification then re-locks.
  DrainDeferredReads();
  TrySendNextCertify();
  (void)now;
}

void EbEdge::DrainDeferredReads() {
  std::deque<std::function<void()>> work;
  work.swap(deferred_reads_);
  for (auto& fn : work) fn();
}

void EbEdge::HandleGet(NodeId from, const GetRequest& req, SimTime now) {
  gets_served_++;
  GetResponse resp;
  resp.req_id = req.req_id;
  resp.body = AssembleGetResponse(lsm_, log_, req.key);
  net_->Send(id(), from, sealer_.Seal(from, MsgType::kGetResponse, resp.Encode()));
  (void)now;
}

void EbEdge::HandleScan(NodeId from, const ScanRequest& req, SimTime now) {
  scans_served_++;
  ScanResponse resp;
  resp.req_id = req.req_id;
  resp.body = AssembleScanResponse(lsm_, log_, req.lo, req.hi);
  net_->Send(id(), from, sealer_.Seal(from, MsgType::kScanResponse, resp.Encode()));
  (void)now;
}

void EbEdge::HandleReadBlock(NodeId from, const ReadRequest& req,
                             SimTime now) {
  block_reads_served_++;
  ReadResponse resp;
  resp.req_id = req.req_id;
  resp.bid = req.bid;
  auto block = log_.GetBlock(req.bid);
  if (block.ok()) {
    resp.available = true;
    resp.block = std::move(*block);
    // Synchronous certification: every logged block has its certificate.
    resp.proof = log_.GetCertificate(req.bid);
  }
  net_->Send(id(), from, sealer_.Seal(from, MsgType::kReadResponse, resp.Encode()));
  (void)now;
}

// ----------------------------------------------------------------- client

EbClient::EbClient(Executor* exec, Transport* net, const KeyStore* keystore,
                   Signer signer, NodeId edge, Dc location, CostModel costs,
                   ClientConfig config)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      edge_(edge),
      location_(location),
      costs_(costs),
      config_(config),
      verifier_cache_(config.verify_cache_limits) {}

void EbClient::SendWrite(MsgType type, std::vector<Entry> entries,
                         WriteCb cb) {
  AddRequest req;
  req.req_id = next_req_++;
  req.entries = std::move(entries);
  pending_writes_[req.req_id] = std::move(cb);
  Bytes body = req.Encode();
  exec_->Charge(costs_.client_sign, [this, type, b = std::move(body)]() mutable {
    net_->Send(id(), edge_, sealer_.Seal(edge_, type, b));
  });
}

void EbClient::WriteBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                          WriteCb cb) {
  std::vector<Entry> entries;
  entries.reserve(kvs.size());
  for (const auto& [k, v] : kvs) {
    entries.push_back(
        Entry::Make(signer_, next_entry_seq_++, EncodePutPayload(k, v)));
  }
  SendWrite(MsgType::kEbWriteRequest, std::move(entries), std::move(cb));
}

void EbClient::AppendBatch(std::vector<Bytes> payloads, WriteCb cb) {
  std::vector<Entry> entries;
  entries.reserve(payloads.size());
  for (auto& p : payloads) {
    entries.push_back(Entry::Make(signer_, next_entry_seq_++, std::move(p)));
  }
  // Same wire message as puts: kv-ness is content-defined, so raw
  // entries are certified and logged but contribute no kv pairs.
  SendWrite(MsgType::kEbWriteRequest, std::move(entries), std::move(cb));
}

void EbClient::ReadBlock(BlockId bid, ReadBlockCb cb) {
  ReadRequest req;
  req.req_id = next_req_++;
  req.bid = bid;
  pending_block_reads_[req.req_id] = {bid, std::move(cb)};
  net_->Send(id(), edge_, sealer_.Seal(edge_, MsgType::kReadRequest, req.Encode()));
}

void EbClient::Get(Key key, GetCb cb) {
  GetRequest req{next_req_++, key};
  pending_gets_[req.req_id] = {key, std::move(cb)};
  net_->Send(id(), edge_, sealer_.Seal(edge_, MsgType::kGetRequest, req.Encode()));
}

void EbClient::Scan(Key lo, Key hi, ScanCb cb) {
  ScanRequest req{next_req_++, lo, hi};
  pending_scans_[req.req_id] = {lo, hi, std::move(cb)};
  net_->Send(id(), edge_, sealer_.Seal(edge_, MsgType::kScanRequest, req.Encode()));
}

void EbClient::OnMessage(NodeId from, Slice payload, SimTime now) {
  if (from != edge_) return;
  auto env = opener_.Open(payload);
  if (!env.ok()) return;
  switch (env->type) {
    case MsgType::kEbWriteResponse: {
      auto resp = AddResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_writes_.find(resp->req_id);
      if (it == pending_writes_.end()) return;
      WriteCb cb = std::move(it->second);
      pending_writes_.erase(it);
      if (cb) cb(Status::OK(), resp->bid, now);
      break;
    }
    case MsgType::kReadResponse: {
      auto resp = ReadResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_block_reads_.find(resp->req_id);
      if (it == pending_block_reads_.end()) return;
      auto [bid, cb] = std::move(it->second);
      pending_block_reads_.erase(it);
      if (!resp->available) {
        if (cb) cb(Status::NotFound("block not available"), Block{}, now);
        break;
      }
      // Certified synchronously at commit: the proof must be present,
      // valid, for this edge, and match the shipped block.
      Status st = Status::OK();
      if (resp->block.id != bid ||
          !resp->block.ValidateReservations().ok()) {
        st = Status::SecurityViolation("block id/reservation check failed");
      } else if (!resp->proof.has_value()) {
        st = Status::SecurityViolation("certified read without a proof");
      } else if (!resp->proof->Validate(*keystore_).ok() ||
                 resp->proof->edge != edge_ || resp->proof->bid != bid ||
                 resp->proof->digest != resp->block.Digest()) {
        st = Status::SecurityViolation("invalid read proof");
      }
      const SimTime verified_at = now + costs_.client_verify_read;
      Block block = st.ok() ? std::move(resp->block) : Block{};
      exec_->Charge(costs_.client_verify_read,
                    [cb = std::move(cb), st, b = std::move(block),
                     verified_at] {
                      if (cb) cb(st, b, verified_at);
                    });
      break;
    }
    case MsgType::kGetResponse: {
      auto resp = GetResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_gets_.find(resp->req_id);
      if (it == pending_gets_.end()) return;
      auto [key, cb] = std::move(it->second);
      pending_gets_.erase(it);
      const SimTime verified_at = now + costs_.client_verify_read;
      GetVerifyOptions opts;
      opts.now = now;
      opts.cache = config_.verify_cache ? &verifier_cache_ : nullptr;
      auto verified =
          VerifyGetResponse(*keystore_, edge_, key, resp->body, opts);
      if (verified.ok()) {
        VerifiedGet v = *verified;
        exec_->Charge(costs_.client_verify_read, [cb, v, verified_at] {
          if (cb) cb(Status::OK(), v, verified_at);
        });
      } else {
        Status st = verified.status();
        exec_->Charge(costs_.client_verify_read, [cb, st, verified_at] {
          if (cb) cb(st, VerifiedGet{}, verified_at);
        });
      }
      break;
    }
    case MsgType::kScanResponse: {
      auto resp = ScanResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_scans_.find(resp->req_id);
      if (it == pending_scans_.end()) return;
      PendingScan pending = std::move(it->second);
      pending_scans_.erase(it);
      const SimTime verified_at = now + costs_.client_verify_read;
      GetVerifyOptions opts;
      opts.now = now;
      opts.cache = config_.verify_cache ? &verifier_cache_ : nullptr;
      auto verified = VerifyScanResponse(*keystore_, edge_, pending.lo,
                                         pending.hi, resp->body, opts);
      ScanCb cb = std::move(pending.cb);
      if (verified.ok()) {
        VerifiedScan v = std::move(*verified);
        exec_->Charge(costs_.client_verify_read, [cb, v, verified_at] {
          if (cb) cb(Status::OK(), v, verified_at);
        });
      } else {
        Status st = verified.status();
        exec_->Charge(costs_.client_verify_read, [cb, st, verified_at] {
          if (cb) cb(st, VerifiedScan{}, verified_at);
        });
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace wedge
