#include "baselines/cloud_only.h"

#include <algorithm>

#include "common/logging.h"

namespace wedge {

CloudOnlyServer::CloudOnlyServer(Executor* exec, Transport* net,
                                 const KeyStore* keystore, Signer signer,
                                 Dc location, CostModel costs)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      location_(location),
      costs_(costs),
      fg_(exec->MakeLane()) {}

void CloudOnlyServer::OnMessage(NodeId from, Slice payload, SimTime now) {
  auto env = opener_.Open(payload);
  if (!env.ok()) return;
  switch (env->type) {
    case MsgType::kCloudWriteRequest: {
      auto req = CloudWriteRequest::Decode(env->body);
      if (!req.ok()) return;
      const SimTime serial = costs_.CloudBatchSerial(req->entries.size());
      fg_->ExecuteAfter(serial, costs_.cloud_batch_parallel,
                        [this, from, r = std::move(*req)] {
                          HandleWrite(from, r, exec_->Now());
                        });
      break;
    }
    case MsgType::kCloudReadRequest: {
      auto req = CloudReadRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_->Execute(costs_.cloud_read_serial, [this, from, r = *req] {
        HandleRead(from, r, exec_->Now());
      });
      break;
    }
    case MsgType::kScanRequest: {
      auto req = ScanRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_->Execute(costs_.cloud_read_serial, [this, from, r = *req] {
        HandleScan(from, r, exec_->Now());
      });
      break;
    }
    case MsgType::kReadRequest: {
      auto req = ReadRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_->Execute(costs_.cloud_read_serial, [this, from, r = *req] {
        HandleReadBlock(from, r, exec_->Now());
      });
      break;
    }
    default:
      break;
  }
  (void)now;
}

void CloudOnlyServer::HandleWrite(NodeId from, const CloudWriteRequest& req,
                                  SimTime now) {
  Block block;
  block.id = next_bid_++;
  block.created_at = now;
  for (const Entry& e : req.entries) {
    if (!e.Validate(*keystore_).ok()) continue;
    // Content-defined kv-ness, the same rule as the edge systems: an
    // entry is a put iff its payload decodes as one, regardless of the
    // request's (advisory) is_kv flag — so the identical call sequence
    // yields identical results on every backend.
    auto op = DecodePutPayload(e.payload);
    if (op.ok()) kv_[op->key] = op->value;
    block.entries.push_back(e);
  }
  (void)log_.Append(block);
  blocks_committed_++;
  CloudWriteResponse resp{req.req_id, block.id};
  net_->Send(id(), from, sealer_.Seal(from, MsgType::kCloudWriteResponse, resp.Encode()));
}

void CloudOnlyServer::HandleRead(NodeId from, const CloudReadRequest& req,
                                 SimTime now) {
  reads_served_++;
  CloudReadResponse resp;
  resp.req_id = req.req_id;
  auto it = kv_.find(req.key);
  if (it != kv_.end()) {
    resp.found = true;
    resp.value = it->second;
  }
  net_->Send(id(), from, sealer_.Seal(from, MsgType::kCloudReadResponse, resp.Encode()));
  (void)now;
}

void CloudOnlyServer::HandleReadBlock(NodeId from, const ReadRequest& req,
                                      SimTime now) {
  block_reads_served_++;
  ReadResponse resp;
  resp.req_id = req.req_id;
  resp.bid = req.bid;
  auto block = log_.GetBlock(req.bid);
  if (block.ok()) {
    resp.available = true;
    resp.block = std::move(*block);
    // Trusted server: no certificate needed (and none exists).
  }
  net_->Send(id(), from, sealer_.Seal(from, MsgType::kReadResponse, resp.Encode()));
  (void)now;
}

void CloudOnlyServer::HandleScan(NodeId from, const ScanRequest& req,
                                 SimTime now) {
  scans_served_++;
  CloudScanResponse resp;
  resp.req_id = req.req_id;
  for (const auto& [key, value] : kv_) {
    if (key >= req.lo && key <= req.hi) resp.pairs.push_back({key, value, 0});
  }
  std::sort(resp.pairs.begin(), resp.pairs.end(),
            [](const KvPair& a, const KvPair& b) { return a.key < b.key; });
  net_->Send(id(), from, sealer_.Seal(from, MsgType::kCloudScanResponse, resp.Encode()));
  (void)now;
}

CloudOnlyClient::CloudOnlyClient(Executor* exec, Transport* net,
                                 const KeyStore* keystore, Signer signer,
                                 NodeId server, Dc location, CostModel costs)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      server_(server),
      location_(location),
      costs_(costs) {}

void CloudOnlyClient::SendWrite(bool is_kv, std::vector<Entry> entries,
                                WriteCb cb) {
  CloudWriteRequest req;
  req.req_id = next_req_++;
  req.is_kv = is_kv;
  req.entries = std::move(entries);
  pending_writes_[req.req_id] = std::move(cb);
  Bytes body = req.Encode();
  exec_->Charge(costs_.client_sign, [this, b = std::move(body)]() mutable {
    net_->Send(id(), server_, sealer_.Seal(server_, MsgType::kCloudWriteRequest, b));
  });
}

void CloudOnlyClient::WriteBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                                 WriteCb cb) {
  std::vector<Entry> entries;
  entries.reserve(kvs.size());
  for (const auto& [k, v] : kvs) {
    entries.push_back(
        Entry::Make(signer_, next_entry_seq_++, EncodePutPayload(k, v)));
  }
  SendWrite(/*is_kv=*/true, std::move(entries), std::move(cb));
}

void CloudOnlyClient::AppendBatch(std::vector<Bytes> payloads, WriteCb cb) {
  std::vector<Entry> entries;
  entries.reserve(payloads.size());
  for (auto& p : payloads) {
    entries.push_back(Entry::Make(signer_, next_entry_seq_++, std::move(p)));
  }
  SendWrite(/*is_kv=*/false, std::move(entries), std::move(cb));
}

void CloudOnlyClient::ReadBlock(BlockId bid, ReadBlockCb cb) {
  ReadRequest req;
  req.req_id = next_req_++;
  req.bid = bid;
  pending_block_reads_[req.req_id] = std::move(cb);
  net_->Send(id(), server_, sealer_.Seal(server_, MsgType::kReadRequest, req.Encode()));
}

void CloudOnlyClient::Read(Key key, ReadCb cb) {
  CloudReadRequest req{next_req_++, key};
  pending_reads_[req.req_id] = std::move(cb);
  net_->Send(id(), server_, sealer_.Seal(server_, MsgType::kCloudReadRequest, req.Encode()));
}

void CloudOnlyClient::Scan(Key lo, Key hi, ScanCb cb) {
  ScanRequest req{next_req_++, lo, hi};
  pending_scans_[req.req_id] = std::move(cb);
  net_->Send(id(), server_, sealer_.Seal(server_, MsgType::kScanRequest, req.Encode()));
}

void CloudOnlyClient::OnMessage(NodeId from, Slice payload, SimTime now) {
  if (from != server_) return;
  auto env = opener_.Open(payload);
  if (!env.ok()) return;
  switch (env->type) {
    case MsgType::kCloudWriteResponse: {
      auto resp = CloudWriteResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_writes_.find(resp->req_id);
      if (it == pending_writes_.end()) return;
      WriteCb cb = std::move(it->second);
      pending_writes_.erase(it);
      if (cb) cb(Status::OK(), resp->bid, now);
      break;
    }
    case MsgType::kReadResponse: {
      auto resp = ReadResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_block_reads_.find(resp->req_id);
      if (it == pending_block_reads_.end()) return;
      ReadBlockCb cb = std::move(it->second);
      pending_block_reads_.erase(it);
      // Trusted result, like key reads: no verification.
      if (!resp->available) {
        if (cb) cb(Status::NotFound("block not available"), Block{}, now);
      } else if (cb) {
        cb(Status::OK(), resp->block, now);
      }
      break;
    }
    case MsgType::kCloudReadResponse: {
      auto resp = CloudReadResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_reads_.find(resp->req_id);
      if (it == pending_reads_.end()) return;
      ReadCb cb = std::move(it->second);
      pending_reads_.erase(it);
      // Trusted result: no verification cost (Fig. 5d).
      if (cb) cb(Status::OK(), resp->found, resp->value, now);
      break;
    }
    case MsgType::kCloudScanResponse: {
      auto resp = CloudScanResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_scans_.find(resp->req_id);
      if (it == pending_scans_.end()) return;
      ScanCb cb = std::move(it->second);
      pending_scans_.erase(it);
      // Trusted result, like reads: no verification.
      if (cb) cb(Status::OK(), resp->pairs, now);
      break;
    }
    default:
      break;
  }
}

}  // namespace wedge
