#include "baselines/cloud_only.h"

#include <algorithm>

#include "common/logging.h"

namespace wedge {

CloudOnlyServer::CloudOnlyServer(Simulation* sim, SimNetwork* net,
                                 const KeyStore* keystore, Signer signer,
                                 Dc location, CostModel costs)
    : sim_(sim),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      location_(location),
      costs_(costs),
      fg_(sim) {}

void CloudOnlyServer::OnMessage(NodeId from, Slice payload, SimTime now) {
  auto env = Envelope::Open(*keystore_, payload);
  if (!env.ok()) return;
  switch (env->type) {
    case MsgType::kCloudWriteRequest: {
      auto req = CloudWriteRequest::Decode(env->body);
      if (!req.ok()) return;
      const SimTime serial = costs_.CloudBatchSerial(req->entries.size());
      const SimTime done = fg_.Reserve(serial) + costs_.cloud_batch_parallel;
      sim_->ScheduleAt(done, [this, from, r = std::move(*req)] {
        HandleWrite(from, r, sim_->now());
      });
      break;
    }
    case MsgType::kCloudReadRequest: {
      auto req = CloudReadRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_.Execute(costs_.cloud_read_serial, [this, from, r = *req] {
        HandleRead(from, r, sim_->now());
      });
      break;
    }
    case MsgType::kScanRequest: {
      auto req = ScanRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_.Execute(costs_.cloud_read_serial, [this, from, r = *req] {
        HandleScan(from, r, sim_->now());
      });
      break;
    }
    default:
      break;
  }
  (void)now;
}

void CloudOnlyServer::HandleWrite(NodeId from, const CloudWriteRequest& req,
                                  SimTime now) {
  Block block;
  block.id = next_bid_++;
  block.created_at = now;
  for (const Entry& e : req.entries) {
    if (!e.Validate(*keystore_).ok()) continue;
    if (req.is_kv) {
      auto op = DecodePutPayload(e.payload);
      if (op.ok()) kv_[op->key] = op->value;
    }
    block.entries.push_back(e);
  }
  (void)log_.Append(block);
  blocks_committed_++;
  CloudWriteResponse resp{req.req_id, block.id};
  net_->Send(id(), from,
             Envelope::Seal(signer_, MsgType::kCloudWriteResponse,
                            resp.Encode()));
}

void CloudOnlyServer::HandleRead(NodeId from, const CloudReadRequest& req,
                                 SimTime now) {
  reads_served_++;
  CloudReadResponse resp;
  resp.req_id = req.req_id;
  auto it = kv_.find(req.key);
  if (it != kv_.end()) {
    resp.found = true;
    resp.value = it->second;
  }
  net_->Send(id(), from,
             Envelope::Seal(signer_, MsgType::kCloudReadResponse,
                            resp.Encode()));
  (void)now;
}

void CloudOnlyServer::HandleScan(NodeId from, const ScanRequest& req,
                                 SimTime now) {
  scans_served_++;
  CloudScanResponse resp;
  resp.req_id = req.req_id;
  for (const auto& [key, value] : kv_) {
    if (key >= req.lo && key <= req.hi) resp.pairs.push_back({key, value, 0});
  }
  std::sort(resp.pairs.begin(), resp.pairs.end(),
            [](const KvPair& a, const KvPair& b) { return a.key < b.key; });
  net_->Send(id(), from,
             Envelope::Seal(signer_, MsgType::kCloudScanResponse,
                            resp.Encode()));
  (void)now;
}

CloudOnlyClient::CloudOnlyClient(Simulation* sim, SimNetwork* net,
                                 const KeyStore* keystore, Signer signer,
                                 NodeId server, Dc location, CostModel costs)
    : sim_(sim),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      server_(server),
      location_(location),
      costs_(costs) {}

void CloudOnlyClient::WriteBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                                 WriteCb cb) {
  CloudWriteRequest req;
  req.req_id = next_req_++;
  req.is_kv = true;
  for (const auto& [k, v] : kvs) {
    req.entries.push_back(
        Entry::Make(signer_, next_entry_seq_++, EncodePutPayload(k, v)));
  }
  pending_writes_[req.req_id] = std::move(cb);
  Bytes body = req.Encode();
  net_->After(costs_.client_sign, [this, b = std::move(body)]() mutable {
    net_->Send(id(), server_,
               Envelope::Seal(signer_, MsgType::kCloudWriteRequest,
                              std::move(b)));
  });
}

void CloudOnlyClient::Read(Key key, ReadCb cb) {
  CloudReadRequest req{next_req_++, key};
  pending_reads_[req.req_id] = std::move(cb);
  net_->Send(id(), server_,
             Envelope::Seal(signer_, MsgType::kCloudReadRequest,
                            req.Encode()));
}

void CloudOnlyClient::Scan(Key lo, Key hi, ScanCb cb) {
  ScanRequest req{next_req_++, lo, hi};
  pending_scans_[req.req_id] = std::move(cb);
  net_->Send(id(), server_,
             Envelope::Seal(signer_, MsgType::kScanRequest, req.Encode()));
}

void CloudOnlyClient::OnMessage(NodeId from, Slice payload, SimTime now) {
  if (from != server_) return;
  auto env = Envelope::Open(*keystore_, payload);
  if (!env.ok()) return;
  switch (env->type) {
    case MsgType::kCloudWriteResponse: {
      auto resp = CloudWriteResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_writes_.find(resp->req_id);
      if (it == pending_writes_.end()) return;
      WriteCb cb = std::move(it->second);
      pending_writes_.erase(it);
      if (cb) cb(Status::OK(), now);
      break;
    }
    case MsgType::kCloudReadResponse: {
      auto resp = CloudReadResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_reads_.find(resp->req_id);
      if (it == pending_reads_.end()) return;
      ReadCb cb = std::move(it->second);
      pending_reads_.erase(it);
      // Trusted result: no verification cost (Fig. 5d).
      if (cb) cb(Status::OK(), resp->found, resp->value, now);
      break;
    }
    case MsgType::kCloudScanResponse: {
      auto resp = CloudScanResponse::Decode(env->body);
      if (!resp.ok()) return;
      auto it = pending_scans_.find(resp->req_id);
      if (it == pending_scans_.end()) return;
      ScanCb cb = std::move(it->second);
      pending_scans_.erase(it);
      // Trusted result, like reads: no verification.
      if (cb) cb(Status::OK(), resp->pairs, now);
      break;
    }
    default:
      break;
  }
}

}  // namespace wedge
