// Edge-baseline (paper §II-C, §VI): the conventional way to use an
// untrusted edge. Every write is certified at the cloud *synchronously*
// before the edge answers the client:
//
//   client -> edge -> cloud (full block!) -> edge -> client
//
// The cloud maintains the authoritative mLSM for the edge, regenerates
// merged pages + Merkle roots on every write, and ships them back — so
// the cloud sits on the write path (latency) and the edge-cloud link
// carries data both ways (bandwidth), exactly the costs WedgeChain's lazy
// + data-free certification removes.
//
// Reads are served at the edge from the mirrored, fully certified state
// with the same proofs as WedgeChain (the paper reports the mLSM-index
// variant). While a write's round trip is in flight the partition is
// write-locked and reads queue behind it: the mutable state has no
// snapshot isolation — this is the "synchronous coordination overhead"
// visible in the mixed-workload experiment (Fig. 5b).

#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "core/config.h"
#include "core/read_service.h"
#include "crypto/signature.h"
#include "log/edge_log.h"
#include "lsmerkle/lsmerkle_tree.h"
#include "lsmerkle/verifier_cache.h"
#include "runtime/runtime.h"
#include "simnet/cost_model.h"
#include "wire/message.h"
#include "wire/protocol.h"
#include "wire/session.h"

namespace wedge {

/// The cloud side: authoritative mLSM per edge, synchronous certification.
class EbCloud : public Endpoint {
 public:
  EbCloud(Executor* exec, Transport* net, const KeyStore* keystore,
          Signer signer, Dc location, LsmConfig lsm_config, CostModel costs);

  void Start() { net_->Attach(id(), location_, this); }
  NodeId id() const { return signer_.id(); }

  void OnMessage(NodeId from, Slice payload, SimTime now) override;

  uint64_t blocks_certified() const { return blocks_certified_; }
  uint64_t merges_performed() const { return merges_performed_; }

 private:
  struct EdgeState {
    LsmerkleTree tree;
    Epoch epoch = 0;
    explicit EdgeState(const LsmConfig& cfg) : tree(cfg) {}
  };

  void HandleCertify(NodeId edge, EbCertify msg, SimTime now);

  Executor* exec_;
  Transport* net_;
  const KeyStore* keystore_;
  Signer signer_;
  SessionSealer sealer_;
  SessionOpener opener_;
  Dc location_;
  LsmConfig lsm_config_;
  CostModel costs_;
  std::unique_ptr<Lane> merge_lane_;

  std::unordered_map<NodeId, EdgeState> edges_;
  uint64_t blocks_certified_ = 0;
  uint64_t merges_performed_ = 0;
};

/// The edge side: forwards every write to the cloud before replying;
/// serves proof-carrying reads from the mirrored certified state.
class EbEdge : public Endpoint {
 public:
  EbEdge(Executor* exec, Transport* net, const KeyStore* keystore,
         Signer signer, NodeId cloud, Dc location, EdgeConfig config,
         CostModel costs);

  void Start() { net_->Attach(id(), location_, this); }
  NodeId id() const { return signer_.id(); }

  void OnMessage(NodeId from, Slice payload, SimTime now) override;

  const LsmerkleTree& lsm() const { return lsm_; }
  uint64_t writes_committed() const { return writes_committed_; }
  uint64_t gets_served() const { return gets_served_; }
  uint64_t scans_served() const { return scans_served_; }
  uint64_t block_reads_served() const { return block_reads_served_; }

 private:
  struct PendingWrite {
    NodeId client;
    SeqNum req_id;
    Block block;  // applied locally once the cloud certifies it
  };

  void HandleWrite(NodeId from, AddRequest req, SimTime now);
  void HandleGet(NodeId from, const GetRequest& req, SimTime now);
  void HandleScan(NodeId from, const ScanRequest& req, SimTime now);
  void HandleReadBlock(NodeId from, const ReadRequest& req, SimTime now);
  /// Runs read work now, or parks it behind the in-flight certification
  /// round trip (the mutable state has no snapshot isolation).
  void DeferOrRun(std::function<void()> work);
  void HandleCertifyResponse(EbCertifyResponse resp, SimTime now);
  void TrySendNextCertify();
  void DrainDeferredReads();

  Executor* exec_;
  Transport* net_;
  const KeyStore* keystore_;
  Signer signer_;
  SessionSealer sealer_;
  SessionOpener opener_;
  NodeId cloud_;
  Dc location_;
  EdgeConfig config_;
  CostModel costs_;
  std::unique_ptr<Lane> fg_;

  EdgeLog log_;
  LsmerkleTree lsm_;
  BlockId next_bid_ = 0;

  /// Writes pipeline through edge processing but their certification
  /// round trips serialize (blocks must install in order); the partition
  /// is read-locked while a round trip is in flight — the mutable state
  /// has no snapshot isolation, unlike WedgeChain's immutable mLSM.
  bool certify_in_flight_ = false;
  std::optional<PendingWrite> in_flight_;
  std::deque<PendingWrite> certify_queue_;
  std::deque<std::function<void()>> deferred_reads_;

  uint64_t writes_committed_ = 0;
  uint64_t gets_served_ = 0;
  uint64_t scans_served_ = 0;
  uint64_t block_reads_served_ = 0;
};

/// The edge-baseline client: batched writes, interactive verified gets.
class EbClient : public Endpoint {
 public:
  /// Delivers the committed block id with the ack, so log workloads can
  /// chain ReadBlock calls exactly as on the WedgeChain client.
  using WriteCb = std::function<void(const Status&, BlockId, SimTime)>;
  using GetCb =
      std::function<void(const Status&, const VerifiedGet&, SimTime)>;
  using ScanCb =
      std::function<void(const Status&, const VerifiedScan&, SimTime)>;
  /// Block reads are certified synchronously here, so one callback fires
  /// with the (verified) block; there is no Phase I/II split.
  using ReadBlockCb =
      std::function<void(const Status&, const Block&, SimTime)>;

  EbClient(Executor* exec, Transport* net, const KeyStore* keystore,
           Signer signer, NodeId edge, Dc location, CostModel costs,
           ClientConfig config = {});

  void Start() { net_->Attach(id(), location_, this); }
  NodeId id() const { return signer_.id(); }

  /// Runs `fn` on this client's executor — the entry hop the synchronous
  /// facade uses (inline under the simulator, posted under threads).
  void Invoke(std::function<void()> fn) { exec_->Post(std::move(fn)); }

  void WriteBatch(const std::vector<std::pair<Key, Bytes>>& kvs, WriteCb cb);

  /// Appends raw log entries: certified at the cloud like every write,
  /// logged at the edge, but never indexed into the mLSM.
  void AppendBatch(std::vector<Bytes> payloads, WriteCb cb);

  void Get(Key key, GetCb cb);

  /// Scans [lo, hi] with the same completeness-proof verification as the
  /// WedgeChain client: the mirrored certified state carries proofs.
  void Scan(Key lo, Key hi, ScanCb cb);

  /// Reads log block `bid`; the response's certificate is verified
  /// against the cloud's key before delivery.
  void ReadBlock(BlockId bid, ReadBlockCb cb);

  const VerifierCache& verifier_cache() const { return verifier_cache_; }

  /// Cache management for the sharded routing layer (per-shard sizing
  /// and migrated-range invalidation across resharding epochs).
  void ResizeVerifierCache(const VerifierCache::Limits& limits) {
    verifier_cache_.Resize(limits);
  }
  void InvalidateVerifierRange(Key lo, Key hi) {
    verifier_cache_.InvalidateRange(lo, hi);
  }

  void OnMessage(NodeId from, Slice payload, SimTime now) override;

 private:
  void SendWrite(MsgType type, std::vector<Entry> entries, WriteCb cb);

  Executor* exec_;
  Transport* net_;
  const KeyStore* keystore_;
  Signer signer_;
  SessionSealer sealer_;
  SessionOpener opener_;
  NodeId edge_;
  Dc location_;
  CostModel costs_;
  ClientConfig config_;

  SeqNum next_req_ = 1;
  SeqNum next_entry_seq_ = 1;
  std::unordered_map<SeqNum, WriteCb> pending_writes_;
  std::unordered_map<SeqNum, std::pair<Key, GetCb>> pending_gets_;
  struct PendingScan {
    Key lo = 0;
    Key hi = 0;
    ScanCb cb;
  };
  std::unordered_map<SeqNum, PendingScan> pending_scans_;
  std::unordered_map<SeqNum, std::pair<BlockId, ReadBlockCb>>
      pending_block_reads_;
  VerifierCache verifier_cache_;
};

}  // namespace wedge
