// Datacenters and the inter-datacenter latency matrix.
//
// The paper's evaluation (§VI) runs on five AWS regions: California (C),
// Oregon (O), Virginia (V), Ireland (I), and Mumbai (M). Table I gives the
// measured RTTs from California; the remaining pairs are filled in with
// typical AWS inter-region RTTs (the paper only exercises pairs involving
// C, or pairs with the cloud fixed in Mumbai for Fig. 7(b)).

#pragma once

#include <array>
#include <string_view>

#include "common/types.h"

namespace wedge {

/// The five datacenters of the paper's evaluation.
enum class Dc : uint8_t {
  kCalifornia = 0,  // C — hosts clients (and usually edge nodes)
  kOregon = 1,      // O
  kVirginia = 2,    // V — default cloud location
  kIreland = 3,     // I
  kMumbai = 4,      // M
};

constexpr int kDcCount = 5;

std::string_view DcName(Dc dc);
std::string_view DcShortName(Dc dc);  // "C", "O", "V", "I", "M"

/// Symmetric RTT matrix between datacenters, in simulated time units.
class LatencyMatrix {
 public:
  /// All-zero matrix (single-site deployments / unit tests).
  LatencyMatrix();

  /// The paper's Table I row for California plus typical AWS values for
  /// the remaining pairs:
  ///
  ///        C     O     V     I     M
  ///   C    0    19    61   141   238     (Table I)
  ///   O         0    70   130   220
  ///   V               0    75   185
  ///   I                     0   122
  ///   M                           0
  static LatencyMatrix Paper();

  SimTime Rtt(Dc a, Dc b) const {
    return rtt_[static_cast<int>(a)][static_cast<int>(b)];
  }
  SimTime OneWay(Dc a, Dc b) const { return Rtt(a, b) / 2; }

  /// Sets the RTT for a pair (both directions).
  void SetRtt(Dc a, Dc b, SimTime rtt);

 private:
  std::array<std::array<SimTime, kDcCount>, kDcCount> rtt_;
};

}  // namespace wedge
