// The calibrated CPU/processing cost model.
//
// The paper evaluates on EC2 m5d.xlarge VMs; we substitute a simulator
// (DESIGN.md §2). Network structure comes from the Table I RTT matrix;
// everything compute-side is charged through the constants below. They
// were calibrated once against the paper's single-point measurements:
//
//  - WedgeChain put latency 15 ms at B=100 and the +22–30% multi-client
//    scaling (Fig. 4a, 5a) pin the edge request costs;
//  - Cloud-only 78 ms at B=100 and its multi-client ceiling ~7% below
//    WedgeChain (Fig. 5a) pin the cloud request costs;
//  - Edge-baseline 109→213 ms across B=100→2000 (Fig. 4a) pins the cloud
//    merge + edge install costs and their per-byte terms;
//  - best-case read latency 0.71 ms with 0.19 ms client verification vs
//    0.5 ms trusted cloud read (Fig. 5d) pins the read-path costs;
//  - Phase II falling behind Phase I at B≥500 (Fig. 6) pins the edge's
//    background certification pipeline costs.
//
// All values are virtual microseconds (or per-byte microseconds).

#pragma once

#include "common/types.h"

namespace wedge {

struct CostModel {
  // ---- client ----
  /// Signing an outgoing request.
  SimTime client_sign = 30;
  /// Verifying a read response: recompute digests / Merkle paths and check
  /// signatures (the 0.19 ms of Fig. 5d).
  SimTime client_verify_read = 190;
  /// Verifying an add/put response (block echo + signature).
  SimTime client_verify_add = 60;

  // ---- edge node, foreground (request path) ----
  /// Serialized part of handling one add/put batch: signature checks,
  /// batching queue, block build, log append, response signing.
  SimTime edge_batch_serial = 12000;
  /// Parallelizable part (adds latency, does not occupy the lane).
  SimTime edge_batch_parallel = 2400;
  /// Per-operation cost within a batch (entry hash + index insert).
  SimTime edge_per_op = 2;
  /// Serialized cost of serving one read/get with proof assembly.
  SimTime edge_read_serial = 350;

  // ---- edge node, background (lazy certification pipeline) ----
  /// Per-block fixed cost: persist block, construct block-certify,
  /// process block-proof, forward proofs to clients.
  SimTime edge_cert_fixed = 10000;
  /// Per-byte cost of the pipeline (block hashing + persistence).
  double edge_cert_per_byte = 0.30;

  // ---- cloud node ----
  /// Serialized part of handling one batch in Cloud-only mode.
  SimTime cloud_batch_serial = 12900;
  SimTime cloud_batch_parallel = 3000;
  double cloud_per_op = 0.6;
  /// Serving one trusted read at the cloud (Fig. 5d best case, 0.5 ms
  /// minus propagation).
  SimTime cloud_read_serial = 330;
  /// Certifying one digest (duplicate check + sign); data-free, so cheap
  /// and size-independent.
  SimTime cloud_cert_fixed = 2000;
  /// Merging pages / regenerating Merkle trees (edge-baseline path and
  /// LSMerkle compactions): fixed + per input byte.
  SimTime cloud_merge_fixed = 18000;
  double cloud_merge_per_byte = 0.26;

  // ---- edge-baseline install ----
  /// Installing the cloud-regenerated pages + Merkle roots at the edge.
  SimTime eb_install_fixed = 6000;
  double eb_install_per_byte = 0.012;

  /// Convenience: cost of a batch on the edge foreground lane.
  SimTime EdgeBatchSerial(size_t ops) const {
    return edge_batch_serial + static_cast<SimTime>(ops) * edge_per_op;
  }
  SimTime CloudBatchSerial(size_t ops) const {
    return cloud_batch_serial +
           static_cast<SimTime>(cloud_per_op * static_cast<double>(ops));
  }
  SimTime EdgeCert(size_t bytes) const {
    return edge_cert_fixed +
           static_cast<SimTime>(edge_cert_per_byte * static_cast<double>(bytes));
  }
  SimTime CloudMerge(size_t bytes) const {
    return cloud_merge_fixed +
           static_cast<SimTime>(cloud_merge_per_byte *
                                static_cast<double>(bytes));
  }
  SimTime EbInstall(size_t bytes) const {
    return eb_install_fixed +
           static_cast<SimTime>(eb_install_per_byte *
                                static_cast<double>(bytes));
  }
};

}  // namespace wedge
