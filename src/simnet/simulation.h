// The discrete-event simulation core: a virtual clock and an event queue.
//
// All of WedgeChain's benchmarks run on virtual time: a benchmark that
// simulates minutes of wide-area traffic finishes in milliseconds of wall
// time and is exactly reproducible from its seed.

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace wedge {

/// Owns virtual time and the pending-event queue. Events at equal times
/// fire in scheduling order (deterministic tie-break).
class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// The simulation-wide RNG (network jitter, workload draws).
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run at absolute virtual time `t` (clamped to now).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs the next event, advancing the clock. False if queue is empty.
  bool Step();

  /// Runs events until the queue is empty or `until` is passed. Events
  /// scheduled at exactly `until` still run.
  void RunUntil(SimTime until);

  /// Runs events for `duration` of virtual time from now.
  void RunFor(SimTime duration) { RunUntil(now_ + duration); }

  /// Drains the queue completely.
  void Run() { RunUntil(std::numeric_limits<SimTime>::max()); }

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO among equal-time events
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace wedge
