#include "simnet/network.h"

#include <utility>

#include "common/logging.h"

namespace wedge {

void SimNetwork::Attach(NodeId id, Dc location, Endpoint* endpoint) {
  nodes_.emplace(id, NodeState{location, endpoint, CpuLane(sim_)});
}

void SimNetwork::Detach(NodeId id) { nodes_.erase(id); }

Result<Dc> SimNetwork::LocationOf(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node " + std::to_string(id) + " not attached");
  }
  return it->second.location;
}

void SimNetwork::SetLinkDown(NodeId a, NodeId b, bool down) {
  auto key1 = std::make_pair(a, b);
  auto key2 = std::make_pair(b, a);
  if (down) {
    down_links_.insert(key1);
    down_links_.insert(key2);
  } else {
    down_links_.erase(key1);
    down_links_.erase(key2);
  }
}

void SimNetwork::SetNodeIsolated(NodeId id, bool isolated) {
  if (isolated) {
    isolated_.insert(id);
  } else {
    isolated_.erase(id);
  }
}

void SimNetwork::SetLinkShape(NodeId a, NodeId b, LinkShape shape) {
  const auto key = std::make_pair(a, b);
  if (shape.extra_delay == 0 && shape.drop_prob <= 0) {
    shaped_.erase(key);
  } else {
    shaped_[key] = shape;
  }
}

void SimNetwork::Send(NodeId from, NodeId to, Bytes payload) {
  auto from_it = nodes_.find(from);
  auto to_it = nodes_.find(to);
  if (from_it == nodes_.end() || to_it == nodes_.end()) {
    stats_.dropped++;
    WLOG_DEBUG << "drop: unattached endpoint " << from << "->" << to;
    return;
  }
  if (down_links_.count({from, to}) != 0 || isolated_.count(from) != 0 ||
      isolated_.count(to) != 0) {
    stats_.dropped++;
    stats_.cut_drops++;
    return;
  }

  // Per-link shaping: drop first (a dropped message consumes no egress),
  // extra delay joins propagation below. Randomness comes from the
  // simulation's seeded RNG, and only shaped links draw from it, so
  // unshaped runs are bit-identical to pre-shaping ones.
  const LinkShape* shape = nullptr;
  if (!shaped_.empty()) {
    auto sh = shaped_.find({from, to});
    if (sh != shaped_.end()) shape = &sh->second;
  }
  if (shape != nullptr && shape->drop_prob > 0 &&
      sim_->rng().NextDouble() < shape->drop_prob) {
    stats_.dropped++;
    stats_.shape_drops++;
    return;
  }

  const size_t wire_bytes = payload.size() + config_.per_message_overhead_bytes;
  const Dc src = from_it->second.location;
  const Dc dst = to_it->second.location;
  const bool wan = src != dst;

  stats_.messages++;
  stats_.bytes += wire_bytes;
  if (wan) {
    stats_.wan_messages++;
    stats_.wan_bytes += wire_bytes;
  }

  const double bandwidth =
      wan ? config_.wan_bytes_per_us : config_.lan_bytes_per_us;
  const SimTime tx =
      static_cast<SimTime>(static_cast<double>(wire_bytes) / bandwidth);

  SimTime propagation =
      wan ? config_.latency.OneWay(src, dst) : config_.local_one_way;
  if (config_.jitter_frac > 0) {
    double j = (sim_->rng().NextDouble() * 2.0 - 1.0) * config_.jitter_frac;
    propagation += static_cast<SimTime>(static_cast<double>(propagation) * j);
  }
  if (shape != nullptr && shape->extra_delay > 0) {
    SimTime extra = shape->extra_delay;
    if (shape->jitter_frac > 0) {
      double j = (sim_->rng().NextDouble() * 2.0 - 1.0) * shape->jitter_frac;
      extra += static_cast<SimTime>(static_cast<double>(extra) * j);
    }
    propagation += extra;
    stats_.shape_delays++;
  }

  // The sender's egress link serializes transmissions; propagation then
  // runs concurrently for in-flight messages.
  SimTime tx_done = from_it->second.egress.Reserve(tx);
  SimTime arrival = tx_done + propagation;

  sim_->ScheduleAt(arrival, [this, from, to, p = std::move(payload)]() {
    auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      stats_.dropped++;
      return;
    }
    it->second.endpoint->OnMessage(from, Slice(p), sim_->now());
  });
}

}  // namespace wedge
