// SimNetwork: the discrete-event Transport implementation.
//
// Delivery time for a message from a to b is
//   egress serialization (bytes / link bandwidth, FIFO per sender)
//   + one-way propagation (RTT matrix / 2, or intra-DC constant)
//   + small deterministic jitter.
//
// Failure injection: individual links can be cut (messages silently
// dropped), which tests use to exercise timeout/dispute paths.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/result.h"
#include "common/types.h"
#include "runtime/fault_plane.h"
#include "simnet/cpu.h"
#include "simnet/datacenter.h"
#include "simnet/simulation.h"
#include "simnet/transport.h"

namespace wedge {

struct NetworkConfig {
  LatencyMatrix latency = LatencyMatrix::Paper();
  /// Effective per-flow WAN throughput, bytes per virtual microsecond
  /// (50 B/us == 50 MB/s).
  double wan_bytes_per_us = 50.0;
  /// Intra-datacenter throughput.
  double lan_bytes_per_us = 2000.0;
  /// Intra-datacenter one-way propagation (us). Calibrated so a local
  /// round trip plus service matches Fig. 5(d)'s best-case reads.
  SimTime local_one_way = 85;
  /// Uniform multiplicative jitter on propagation, e.g. 0.01 = ±1%.
  double jitter_frac = 0.01;
  /// Fixed framing overhead added to every message's size.
  size_t per_message_overhead_bytes = 128;
};

/// Statistics the benchmarks report (data-free certification shows up here
/// as a drop in WAN bytes).
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t wan_messages = 0;
  uint64_t wan_bytes = 0;
  uint64_t dropped = 0;
  /// Breakdown of `dropped` by cause (the remainder was sent to an
  /// unattached node): cut by a down link / isolation, or lost to a
  /// shaped link's drop probability.
  uint64_t cut_drops = 0;
  uint64_t shape_drops = 0;
  /// Messages delayed by a shaped link's extra_delay.
  uint64_t shape_delays = 0;
};

class SimNetwork : public Transport {
 public:
  SimNetwork(Simulation* sim, NetworkConfig config)
      : sim_(sim), config_(config) {}

  /// Registers `endpoint` as the receiver for messages addressed to `id`,
  /// placing it in datacenter `location`.
  void Attach(NodeId id, Dc location, Endpoint* endpoint);

  /// Unregisters a node; in-flight messages to it are dropped on arrival.
  void Detach(NodeId id);

  Result<Dc> LocationOf(NodeId id) const;

  /// Cuts (or restores) the link between two nodes, both directions.
  void SetLinkDown(NodeId a, NodeId b, bool down);

  /// Drops all traffic from/to `id` (node isolation).
  void SetNodeIsolated(NodeId id, bool isolated);

  /// Shapes messages from `a` to `b` (directional; call with both orders
  /// for a symmetric link): extra propagation delay with its own jitter,
  /// plus a drop probability. Randomness comes from the simulation's
  /// seeded RNG, so shaped runs stay deterministic. A default-constructed
  /// shape clears the link's shaping.
  void SetLinkShape(NodeId a, NodeId b, LinkShape shape);
  void ClearLinkShapes() { shaped_.clear(); }

  // Transport:
  void Send(NodeId from, NodeId to, Bytes payload) override;
  SimTime Now() const override { return sim_->now(); }
  void After(SimTime delay, std::function<void()> fn) override {
    sim_->ScheduleAfter(delay, std::move(fn));
  }
  TransportStats stats_snapshot() const override {
    return TransportStats{stats_.messages, stats_.bytes, stats_.dropped};
  }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }
  const NetworkConfig& config() const { return config_; }

 private:
  struct NodeState {
    Dc location;
    Endpoint* endpoint;
    /// FIFO egress link; serializes transmissions from this node.
    CpuLane egress;
  };

  Simulation* sim_;
  NetworkConfig config_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::set<NodeId> isolated_;
  std::map<std::pair<NodeId, NodeId>, LinkShape> shaped_;
  NetworkStats stats_;
};

}  // namespace wedge
