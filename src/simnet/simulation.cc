#include "simnet/simulation.h"

namespace wedge {

void Simulation::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved
  // out before pop. const_cast is safe: the element is removed immediately.
  Event& top = const_cast<Event&>(queue_.top());
  SimTime t = top.time;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  now_ = t;
  ++executed_;
  fn();
  return true;
}

void Simulation::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
  }
  if (now_ < until && until != std::numeric_limits<SimTime>::max()) {
    now_ = until;
  }
}

}  // namespace wedge
