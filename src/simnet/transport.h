// Transport abstraction binding protocol state machines to a network.
//
// EdgeNode / CloudNode / WedgeClient are written against this interface
// only; SimNetwork (simnet/network.h) is the discrete-event implementation
// used by tests and benchmarks. A socket transport could implement the
// same interface unchanged.

#pragma once

#include <functional>

#include "common/slice.h"
#include "common/types.h"

namespace wedge {

/// Receives messages delivered by a Transport.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Called when a message addressed to this endpoint arrives.
  /// `now` is the delivery time.
  virtual void OnMessage(NodeId from, Slice payload, SimTime now) = 0;
};

/// One-way, asynchronous, unordered message delivery plus timers.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `payload` from `from` to `to`. Fire-and-forget; delivery time
  /// is the implementation's business. Messages to unknown nodes are
  /// dropped.
  virtual void Send(NodeId from, NodeId to, Bytes payload) = 0;

  /// Current time.
  virtual SimTime Now() const = 0;

  /// Runs `fn` after `delay`.
  virtual void After(SimTime delay, std::function<void()> fn) = 0;
};

}  // namespace wedge
