// Forwarding header: the Transport/Endpoint seam moved to
// runtime/transport.h when the runtime subsystem was introduced (it is
// implemented by both SimNetwork and the threaded runtime). Kept so
// existing includes keep compiling.

#pragma once

#include "runtime/transport.h"
