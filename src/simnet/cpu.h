// CpuLane: a serialized compute (or transmit) resource inside the
// simulation.
//
// Each node models its processing capacity as one or more lanes. Charging
// work to a lane both delays the completion callback and occupies the
// lane, so offered load beyond 1/service_time saturates — this is what
// produces the throughput ceilings of the paper's multi-client experiments
// (Fig. 5).

#pragma once

#include <functional>

#include "common/types.h"
#include "simnet/simulation.h"

namespace wedge {

/// A resource that processes work items one at a time, FIFO.
class CpuLane {
 public:
  explicit CpuLane(Simulation* sim) : sim_(sim) {}

  /// Reserves `cost` time units on this lane starting no earlier than now;
  /// returns the completion time.
  SimTime Reserve(SimTime cost) {
    SimTime start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
    busy_until_ = start + cost;
    return busy_until_;
  }

  /// Reserves `cost` on the lane and runs `fn` at completion.
  void Execute(SimTime cost, std::function<void()> fn) {
    sim_->ScheduleAt(Reserve(cost), std::move(fn));
  }

  /// Completion time of work reserved so far (may be in the past).
  SimTime busy_until() const { return busy_until_; }

  /// True if the lane has unfinished work at the current time.
  bool busy() const { return busy_until_ > sim_->now(); }

  /// Total time this lane has been reserved since construction/reset.
  /// (Utilization = busy_time / elapsed.)
  SimTime ReservedTotal() const { return reserved_total_; }

 private:
  Simulation* sim_;
  SimTime busy_until_ = 0;
  SimTime reserved_total_ = 0;
};

}  // namespace wedge
