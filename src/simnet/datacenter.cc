#include "simnet/datacenter.h"

namespace wedge {

std::string_view DcName(Dc dc) {
  switch (dc) {
    case Dc::kCalifornia:
      return "California";
    case Dc::kOregon:
      return "Oregon";
    case Dc::kVirginia:
      return "Virginia";
    case Dc::kIreland:
      return "Ireland";
    case Dc::kMumbai:
      return "Mumbai";
  }
  return "?";
}

std::string_view DcShortName(Dc dc) {
  switch (dc) {
    case Dc::kCalifornia:
      return "C";
    case Dc::kOregon:
      return "O";
    case Dc::kVirginia:
      return "V";
    case Dc::kIreland:
      return "I";
    case Dc::kMumbai:
      return "M";
  }
  return "?";
}

LatencyMatrix::LatencyMatrix() {
  for (auto& row : rtt_) row.fill(0);
}

void LatencyMatrix::SetRtt(Dc a, Dc b, SimTime rtt) {
  rtt_[static_cast<int>(a)][static_cast<int>(b)] = rtt;
  rtt_[static_cast<int>(b)][static_cast<int>(a)] = rtt;
}

LatencyMatrix LatencyMatrix::Paper() {
  LatencyMatrix m;
  using enum Dc;
  // Table I (measured from California).
  m.SetRtt(kCalifornia, kOregon, 19 * kMillisecond);
  m.SetRtt(kCalifornia, kVirginia, 61 * kMillisecond);
  m.SetRtt(kCalifornia, kIreland, 141 * kMillisecond);
  m.SetRtt(kCalifornia, kMumbai, 238 * kMillisecond);
  // Typical AWS inter-region RTTs for the remaining pairs.
  m.SetRtt(kOregon, kVirginia, 70 * kMillisecond);
  m.SetRtt(kOregon, kIreland, 130 * kMillisecond);
  m.SetRtt(kOregon, kMumbai, 220 * kMillisecond);
  m.SetRtt(kVirginia, kIreland, 75 * kMillisecond);
  m.SetRtt(kVirginia, kMumbai, 185 * kMillisecond);
  m.SetRtt(kIreland, kMumbai, 122 * kMillisecond);
  return m;
}

}  // namespace wedge
