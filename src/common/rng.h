// Deterministic pseudo-random number generation.
//
// Everything stochastic in WedgeChain (workloads, network jitter,
// scheduling tie-breaks) draws from these generators so a single seed
// reproduces an entire experiment.

#pragma once

#include <cstdint>

namespace wedge {

/// SplitMix64: used to seed other generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Fast, 256-bit state,
/// statistically strong for simulation purposes (not cryptographic).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBelow(uint64_t bound) {
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace wedge
