// Result<T>: a Status or a value of type T (Arrow-style).

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace wedge {

/// Holds either a value of type `T` or an error `Status`. Never holds both.
///
/// Typical use:
///   Result<Block> r = log.GetBlock(bid);
///   if (!r.ok()) return r.status();
///   const Block& b = *r;
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so functions can `return value;`).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs from an error status. Must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() if a value is held.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }

  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace wedge
