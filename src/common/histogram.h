// Latency histogram with log-scaled buckets; used by the benchmark harness
// to report means and percentiles the way the paper's figures do.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wedge {

/// Records non-negative observations (typically latencies in microseconds)
/// and answers mean / percentile / min / max queries.
///
/// Values are binned into exponentially-growing buckets (~1% relative
/// resolution), so memory stays constant regardless of sample count.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to zero.
  void Record(int64_t value);

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  /// Worst-case relative error of a recorded value (half the widest
  /// bucket's relative span): 1/16 with the current 16-minor-bucket
  /// layout. Benchmarks stamp it into their JSON schema so percentile
  /// precision travels with the numbers.
  static double RelativeResolution();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  /// Approximate value at percentile `p` in [0, 100].
  int64_t Percentile(double p) const;
  int64_t Median() const { return Percentile(50.0); }
  int64_t P99() const { return Percentile(99.0); }

  void Reset();

  /// One-line human-readable summary, e.g.
  /// "n=1000 mean=15.2ms p50=15.0ms p99=18.1ms".
  std::string Summary(double scale_to_ms = 1000.0) const;

 private:
  static size_t BucketFor(int64_t value);
  static int64_t BucketUpper(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace wedge
