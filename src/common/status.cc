#include "common/status.h"

namespace wedge {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kSecurityViolation:
      return "SecurityViolation";
    case StatusCode::kMaliciousBehavior:
      return "MaliciousBehavior";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace wedge
