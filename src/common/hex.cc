#include "common/hex.h"

namespace wedge {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(Slice bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (size_t i = 0; i < bytes.size(); ++i) {
    out.push_back(kHexDigits[bytes[i] >> 4]);
    out.push_back(kHexDigits[bytes[i] & 0x0f]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace wedge
