#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wedge {

namespace {
// 64 major buckets (powers of two) x 16 minor buckets each: ~6% relative
// error worst case, constant memory.
constexpr int kMinorBits = 4;
constexpr int kMinorCount = 1 << kMinorBits;
constexpr size_t kBucketCount = 64 * kMinorCount;
}  // namespace

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

double Histogram::RelativeResolution() {
  return 1.0 / static_cast<double>(kMinorCount);
}

size_t Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  if (v < kMinorCount) return static_cast<size_t>(v);
  int msb = 63 - __builtin_clzll(v);
  // Sub-bucket index from the bits just below the MSB.
  uint64_t minor = (v >> (msb - kMinorBits)) & (kMinorCount - 1);
  size_t idx = static_cast<size_t>(msb - kMinorBits + 1) * kMinorCount +
               static_cast<size_t>(minor);
  return std::min(idx, kBucketCount - 1);
}

int64_t Histogram::BucketUpper(size_t bucket) {
  if (bucket < kMinorCount) return static_cast<int64_t>(bucket);
  size_t major = bucket / kMinorCount;
  size_t minor = bucket % kMinorCount;
  // Inverse of BucketFor: value ~ (kMinorCount + minor) << (major - 1).
  return static_cast<int64_t>((static_cast<uint64_t>(kMinorCount) + minor)
                              << (major - 1));
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += static_cast<double>(value);
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

std::string Histogram::Summary(double scale_to_ms) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2fms p50=%.2fms p99=%.2fms max=%.2fms",
                static_cast<unsigned long long>(count_), Mean() / scale_to_ms,
                static_cast<double>(Percentile(50)) / scale_to_ms,
                static_cast<double>(Percentile(99)) / scale_to_ms,
                static_cast<double>(max()) / scale_to_ms);
  return std::string(buf);
}

}  // namespace wedge
