// Shared scalar type aliases for the WedgeChain protocol.

#pragma once

#include <cstdint>

namespace wedge {

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

/// Identifies a node (client, edge, or cloud) in a deployment. Node ids are
/// assigned by the trust authority when identities are registered; they are
/// stable for the lifetime of a deployment.
using NodeId = uint32_t;

/// Block ids are unique monotonic numbers assigned by an edge node; unique
/// per edge node, not across edge nodes (paper §III).
using BlockId = uint64_t;

/// Client-assigned monotonically increasing sequence number, used for
/// replay protection and request/response matching.
using SeqNum = uint64_t;

/// Epoch number for LSMerkle snapshots: increments on every cloud-applied
/// merge. A read proof is anchored to one epoch's global root.
using Epoch = uint64_t;

constexpr NodeId kInvalidNodeId = 0xffffffff;

}  // namespace wedge
