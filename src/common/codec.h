// Canonical binary encoding used for all WedgeChain wire messages and
// digests.
//
// All multi-byte integers are little-endian. Variable-size payloads are
// length-prefixed with a u32. The encoding is canonical: a given logical
// message has exactly one byte representation, which matters because
// digests and signatures are computed over encoded bytes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace wedge {

/// Appends primitive values to a growable byte buffer.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Unsigned LEB128; used where small values dominate.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Length-prefixed (u32) byte string.
  void PutBytes(Slice s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s);
  }

  void PutString(const std::string& s) { PutBytes(Slice(s)); }

  /// Raw bytes with no length prefix (caller knows the length).
  void PutRaw(Slice s) { buf_.insert(buf_.end(), s.data(), s.data() + s.size()); }

  const Bytes& buffer() const { return buf_; }
  Bytes TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes primitive values from a byte view. Every getter returns an
/// error Status on underflow; decoding never reads out of bounds.
class Decoder {
 public:
  explicit Decoder(Slice input) : in_(input) {}

  /// Owning overload: keeps the buffer alive for the decoder's lifetime.
  /// Without it, `Decoder dec(msg.Encode());` would view a destroyed
  /// temporary.
  explicit Decoder(Bytes&& owned)
      : owned_(std::move(owned)), in_(owned_) {}

  Result<uint8_t> GetU8() {
    WEDGE_RETURN_NOT_OK(Need(1));
    uint8_t v = in_[0];
    in_.RemovePrefix(1);
    return v;
  }

  Result<uint16_t> GetU16() {
    WEDGE_RETURN_NOT_OK(Need(2));
    uint16_t v = static_cast<uint16_t>(in_[0]) |
                 static_cast<uint16_t>(in_[1]) << 8;
    in_.RemovePrefix(2);
    return v;
  }

  Result<uint32_t> GetU32() {
    WEDGE_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in_[i]) << (8 * i);
    in_.RemovePrefix(4);
    return v;
  }

  Result<uint64_t> GetU64() {
    WEDGE_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in_[i]) << (8 * i);
    in_.RemovePrefix(8);
    return v;
  }

  Result<int64_t> GetI64() {
    auto r = GetU64();
    if (!r.ok()) return r.status();
    return static_cast<int64_t>(*r);
  }

  Result<bool> GetBool() {
    auto r = GetU8();
    if (!r.ok()) return r.status();
    if (*r > 1) return Status::Corruption("bool byte out of range");
    return *r == 1;
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      WEDGE_RETURN_NOT_OK(Need(1));
      uint8_t b = in_[0];
      in_.RemovePrefix(1);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    return Status::Corruption("varint too long");
  }

  Result<Bytes> GetBytes() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    WEDGE_RETURN_NOT_OK(Need(*len));
    Bytes out(in_.data(), in_.data() + *len);
    in_.RemovePrefix(*len);
    return out;
  }

  Result<std::string> GetString() {
    auto b = GetBytes();
    if (!b.ok()) return b.status();
    return std::string(b->begin(), b->end());
  }

  /// Copies exactly `n` raw bytes (no length prefix).
  Result<Bytes> GetRaw(size_t n) {
    WEDGE_RETURN_NOT_OK(Need(n));
    Bytes out(in_.data(), in_.data() + n);
    in_.RemovePrefix(n);
    return out;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return in_.size(); }

  /// OK iff the input was consumed exactly; call at end of message decode.
  Status ExpectDone() const {
    if (in_.size() != 0) {
      return Status::Corruption("trailing bytes after message: " +
                                std::to_string(in_.size()));
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (in_.size() < n) {
      return Status::Corruption("decode underflow: need " + std::to_string(n) +
                                " bytes, have " + std::to_string(in_.size()));
    }
    return Status::OK();
  }

  Bytes owned_;  // declared before in_ so in_ can view it
  Slice in_;
};

}  // namespace wedge
