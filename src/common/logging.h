// Minimal leveled logging. Off by default in benchmarks; tests and examples
// can raise the level. Not thread-safe beyond line atomicity (stderr).

#pragma once

#include <sstream>
#include <string>

namespace wedge {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { EmitLog(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace wedge

#define WEDGE_LOG(level)                                          \
  if (::wedge::LogLevel::level < ::wedge::GetLogLevel()) {        \
  } else                                                          \
    ::wedge::internal::LogLine(::wedge::LogLevel::level)

#define WLOG_TRACE WEDGE_LOG(kTrace)
#define WLOG_DEBUG WEDGE_LOG(kDebug)
#define WLOG_INFO WEDGE_LOG(kInfo)
#define WLOG_WARN WEDGE_LOG(kWarn)
#define WLOG_ERROR WEDGE_LOG(kError)
