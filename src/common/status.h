// Status: the error-handling currency of WedgeChain.
//
// No exceptions cross public API boundaries (Google/Arrow style). Functions
// that can fail return Status, or Result<T> (see result.h) when they also
// produce a value.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace wedge {

/// Canonical error codes used across all WedgeChain modules.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  /// A cryptographic check failed: bad signature, digest mismatch, forged
  /// proof. Distinct from kCorruption so callers can escalate to disputes.
  kSecurityViolation = 5,
  /// The peer was detected equivocating / lying; punishment applies.
  kMaliciousBehavior = 6,
  kFailedPrecondition = 7,
  kOutOfRange = 8,
  kUnavailable = 9,
  kTimeout = 10,
  kResourceExhausted = 11,
  kNotImplemented = 12,
  kInternal = 13,
  /// A caller-supplied deadline elapsed before the operation finished.
  /// Distinct from kTimeout (a protocol-level give-up, e.g. a proof that
  /// never arrived) and from kUnavailable (the runtime shut down or the
  /// simulation drained — the operation can never finish).
  kDeadlineExceeded = 14,
  /// The caller cancelled the operation (AsyncOp::Cancel) before it
  /// completed. The underlying request may still run to completion in
  /// the deployment; only the handle's observation is abandoned.
  kCancelled = 15,
};

/// Returns the canonical spelling of a code, e.g. "SecurityViolation".
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status SecurityViolation(std::string msg) {
    return Status(StatusCode::kSecurityViolation, std::move(msg));
  }
  static Status MaliciousBehavior(std::string msg) {
    return Status(StatusCode::kMaliciousBehavior, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsSecurityViolation() const {
    return code_ == StatusCode::kSecurityViolation;
  }
  bool IsMaliciousBehavior() const {
    return code_ == StatusCode::kMaliciousBehavior;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace wedge

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if not OK.
#define WEDGE_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::wedge::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates `expr` (a Result<T> expression); on error returns its status,
/// otherwise assigns the value to `lhs`.
#define WEDGE_ASSIGN_OR_RETURN(lhs, expr)        \
  do {                                           \
    auto _res = (expr);                          \
    if (!_res.ok()) return _res.status();        \
    lhs = std::move(_res).ValueOrDie();          \
  } while (0)
