// Hex encoding/decoding for digests and debug output.

#pragma once

#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace wedge {

/// Lower-case hex encoding of `bytes` ("deadbeef").
std::string HexEncode(Slice bytes);

/// Parses a hex string (upper or lower case). Errors on odd length or
/// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace wedge
