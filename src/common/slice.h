// Slice: a non-owning view over a contiguous run of bytes.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace wedge {

/// Byte buffer type used throughout WedgeChain.
using Bytes = std::vector<uint8_t>;

/// A non-owning (pointer, length) view over bytes; the RocksDB idiom.
/// The viewed memory must outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const Bytes& b)  // NOLINT(google-explicit-constructor)
      : data_(b.data()), size_(b.size()) {}
  Slice(const std::string& s)  // NOLINT(google-explicit-constructor)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(std::string_view s)  // NOLINT(google-explicit-constructor)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const char* s)  // NOLINT(google-explicit-constructor)
      : data_(reinterpret_cast<const uint8_t*>(s)), size_(std::strlen(s)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Drops the first `n` bytes from the view.
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  /// Copies the viewed bytes into an owning buffer.
  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool operator==(const Slice& other) const { return Compare(other) == 0; }
  bool operator!=(const Slice& other) const { return Compare(other) != 0; }
  bool operator<(const Slice& other) const { return Compare(other) < 0; }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace wedge
