// The three StoreBackend adapters: each maps its deployment's client API
// onto the deployment-neutral asynchronous interface of backend.h.

#include "api/backend.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>

#include "api/shard_router.h"
#include "baselines/baseline_deployment.h"
#include "core/deployment.h"

namespace wedge {

void MergeStatusBySeverity(Status* into, const Status& s) {
  if (s.ok()) return;
  const bool s_security = s.IsSecurityViolation() || s.IsMaliciousBehavior();
  const bool into_security =
      into->IsSecurityViolation() || into->IsMaliciousBehavior();
  if (into->ok() || (s_security && !into_security)) *into = s;
}

void StoreBackend::MultiGet(size_t client, const std::vector<Key>& keys,
                            MultiGetCb cb) {
  // Unrouted default: one shard holds everything, so the batch is N
  // concurrent point reads on the same client, gathered positionally.
  if (keys.empty()) {
    const SimTime now = runtime().Now();
    if (cb) cb(Status::OK(), MultiGetResult{{}, now}, now);
    return;
  }
  // Sub-reads of a routed batch complete on different shard executors
  // under ThreadedRuntime, so the join is lock-protected; the final
  // callback fires outside the lock.
  struct Join {
    std::mutex mu;
    size_t waiting = 0;
    Status status;
    MultiGetResult out;
  };
  auto join = std::make_shared<Join>();
  join->waiting = keys.size();
  join->out.results.resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Get(client, keys[i],
        [join, i, cb](const Status& st, GetResult r, SimTime t) {
          Status status;
          MultiGetResult out;
          {
            std::lock_guard<std::mutex> lock(join->mu);
            MergeStatusBySeverity(&join->status, st);
            join->out.at = std::max(join->out.at, t);
            join->out.results[i] = std::move(r);
            if (--join->waiting > 0) return;
            status = join->status;
            out = std::move(join->out);
          }
          if (!cb) return;
          if (!status.ok()) {
            cb(status, MultiGetResult{}, out.at);
          } else {
            const SimTime at = out.at;
            cb(status, std::move(out), at);
          }
        });
  }
}

void StoreBackend::SplitShard(size_t shard, SplitCb cb) {
  (void)shard;
  if (cb) {
    cb(Status::FailedPrecondition(
           "resharding needs a sharded store (StoreOptions::WithShards)"),
       SplitReport{}, runtime().Now());
  }
}

void StoreBackend::MergeShards(size_t shard, SplitCb cb) {
  (void)shard;
  if (cb) {
    cb(Status::FailedPrecondition(
           "resharding needs a sharded store (StoreOptions::WithShards)"),
       SplitReport{}, runtime().Now());
  }
}

void StoreBackend::Rebalance(SplitCb cb) {
  if (cb) {
    cb(Status::FailedPrecondition(
           "resharding needs a sharded store (StoreOptions::WithShards)"),
       SplitReport{}, runtime().Now());
  }
}

namespace {

GetResult FromVerified(const VerifiedGet& v, SimTime at) {
  GetResult r;
  r.found = v.found;
  r.value = v.value;
  r.version = v.version;
  r.phase2 = v.phase2;
  r.verified = true;
  r.at = at;
  return r;
}

ScanResult FromVerifiedScan(const VerifiedScan& v, SimTime at) {
  ScanResult r;
  r.pairs = v.pairs;
  r.phase2 = v.phase2;
  r.verified = true;
  r.at = at;
  return r;
}

/// Both baselines certify synchronously: their single commit point fires
/// Phase I and Phase II together, with the real block id in both acks.
StoreBackend::CommitCb CollapsePhases(StoreBackend::CommitCb on_phase1,
                                      StoreBackend::CommitCb on_phase2) {
  return [p1 = std::move(on_phase1),
          p2 = std::move(on_phase2)](const Status& s, BlockId bid, SimTime t) {
    if (p1) p1(s, bid, t);
    if (p2) p2(s, bid, t);
  };
}

BlockRead FromBlock(const Block& b, SimTime at) {
  BlockRead r;
  r.block = b;
  r.phase2 = true;  // both baselines deliver only certified/final blocks
  r.at = at;
  return r;
}

// ------------------------------------------------------------- WedgeChain

class WedgeBackend : public StoreBackend {
 public:
  explicit WedgeBackend(const StoreOptions& options) : d_(options.deploy) {}

  BackendKind kind() const override { return BackendKind::kWedge; }
  void Start() override { d_.Start(); }
  Runtime& runtime() override { return d_.runtime(); }
  Simulation& sim() override { return d_.sim(); }
  SimNetwork& net() override { return d_.net(); }
  size_t client_count() const override { return d_.client_count(); }
  Deployment* wedge() override { return &d_; }

  // Every operation enters through Client::Invoke — the hop that puts
  // the call on the client's own executor (inline under the simulator,
  // posted to its worker under threads), so the client's state is only
  // ever touched from its serialized executor. Captures are by value:
  // the caller's stack is gone by the time a posted closure runs.

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, kvs, p1 = std::move(on_phase1),
              p2 = std::move(on_phase2)]() mutable {
      c.PutBatch(kvs, std::move(p1), std::move(p2));
    });
  }

  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, payloads = std::move(payloads), p1 = std::move(on_phase1),
              p2 = std::move(on_phase2)]() mutable {
      c.AddBatch(std::move(payloads), std::move(p1), std::move(p2));
    });
  }

  void Get(size_t client, Key key, GetCb cb) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, key, cb = std::move(cb)] {
      c.Get(key, [cb](const Status& s, const VerifiedGet& v, SimTime t) {
        cb(s, FromVerified(v, t), t);
      });
    });
  }

  bool EdgeReachable(size_t client) override {
    WedgeClient& c = d_.client(client);
    FaultPlane& f = d_.runtime().faults();
    return !f.IsCrashed(c.edge()) && !f.IsUnreachable(c.id(), c.edge());
  }

  void CloudGet(size_t client, Key key, GetCb cb) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, key, cb = std::move(cb)] {
      c.GetFromCloud(key,
                     [cb](const Status& s, const VerifiedGet& v, SimTime t) {
                       GetResult r = FromVerified(v, t);
                       // A backup miss is not proof of absence — the
                       // backup may lag the edge — so only a hit reports
                       // as verified.
                       r.verified = v.found;
                       cb(s, std::move(r), t);
                     });
    });
  }

  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, lo, hi, cb = std::move(cb)] {
      c.Scan(lo, hi,
             [cb](const Status& s, const VerifiedScan& v, SimTime t) {
               cb(s, FromVerifiedScan(v, t), t);
             });
    });
  }

  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, bid, cb = std::move(cb)] {
      c.ReadBlock(bid, [cb](const Status& s, const Block& b, bool phase2,
                            SimTime t) {
        BlockRead r;
        r.block = b;
        r.phase2 = phase2;
        r.at = t;
        cb(s, std::move(r), t);
      });
    });
  }

  // The verifier cache is client-owned, single-threaded state: these
  // maintenance hops ride the same Invoke marshaling as the data ops,
  // so an epoch install running on the control worker never races a
  // verification in flight on the client's executor.
  void ResizeVerifierCache(size_t client,
                           const VerifierCache::Limits& limits) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, limits] { c.ResizeVerifierCache(limits); });
  }
  void InvalidateVerifierRange(size_t client, Key lo, Key hi) override {
    WedgeClient& c = d_.client(client);
    c.Invoke([&c, lo, hi] { c.InvalidateVerifierRange(lo, hi); });
  }

 private:
  Deployment d_;
};

// ---------------------------------------------------------- edge-baseline

class EdgeBaselineBackend : public StoreBackend {
 public:
  explicit EdgeBaselineBackend(const StoreOptions& options)
      : d_(options.deploy) {}

  BackendKind kind() const override { return BackendKind::kEdgeBaseline; }
  void Start() override { d_.Start(); }
  Runtime& runtime() override { return d_.runtime(); }
  Simulation& sim() override { return d_.sim(); }
  SimNetwork& net() override { return d_.net(); }
  size_t client_count() const override { return d_.client_count(); }
  EdgeBaselineDeployment* edge_baseline() override { return &d_; }

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override {
    EbClient& c = d_.client(client);
    c.Invoke([&c, kvs,
              cb = CollapsePhases(std::move(on_phase1),
                                  std::move(on_phase2))]() mutable {
      c.WriteBatch(kvs, std::move(cb));
    });
  }

  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override {
    EbClient& c = d_.client(client);
    c.Invoke([&c, payloads = std::move(payloads),
              cb = CollapsePhases(std::move(on_phase1),
                                  std::move(on_phase2))]() mutable {
      c.AppendBatch(std::move(payloads), std::move(cb));
    });
  }

  void Get(size_t client, Key key, GetCb cb) override {
    EbClient& c = d_.client(client);
    c.Invoke([&c, key, cb = std::move(cb)] {
      c.Get(key, [cb](const Status& s, const VerifiedGet& v, SimTime t) {
        cb(s, FromVerified(v, t), t);
      });
    });
  }

  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override {
    EbClient& c = d_.client(client);
    c.Invoke([&c, lo, hi, cb = std::move(cb)] {
      c.Scan(lo, hi,
             [cb](const Status& s, const VerifiedScan& v, SimTime t) {
               cb(s, FromVerifiedScan(v, t), t);
             });
    });
  }

  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override {
    EbClient& c = d_.client(client);
    c.Invoke([&c, bid, cb = std::move(cb)] {
      c.ReadBlock(bid, [cb](const Status& s, const Block& b, SimTime t) {
        cb(s, FromBlock(b, t), t);
      });
    });
  }

  // Same marshaling rationale as WedgeBackend: the cache lives on the
  // client's serialized executor.
  void ResizeVerifierCache(size_t client,
                           const VerifierCache::Limits& limits) override {
    EbClient& c = d_.client(client);
    c.Invoke([&c, limits] { c.ResizeVerifierCache(limits); });
  }
  void InvalidateVerifierRange(size_t client, Key lo, Key hi) override {
    EbClient& c = d_.client(client);
    c.Invoke([&c, lo, hi] { c.InvalidateVerifierRange(lo, hi); });
  }

 private:
  EdgeBaselineDeployment d_;
};

// ------------------------------------------------------------- cloud-only

class CloudOnlyBackend : public StoreBackend {
 public:
  explicit CloudOnlyBackend(const StoreOptions& options)
      : d_(options.deploy) {}

  BackendKind kind() const override { return BackendKind::kCloudOnly; }
  void Start() override { d_.Start(); }
  Runtime& runtime() override { return d_.runtime(); }
  Simulation& sim() override { return d_.sim(); }
  SimNetwork& net() override { return d_.net(); }
  size_t client_count() const override { return d_.client_count(); }
  CloudOnlyDeployment* cloud_only() override { return &d_; }

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override {
    CloudOnlyClient& c = d_.client(client);
    c.Invoke([&c, kvs,
              cb = CollapsePhases(std::move(on_phase1),
                                  std::move(on_phase2))]() mutable {
      c.WriteBatch(kvs, std::move(cb));
    });
  }

  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override {
    CloudOnlyClient& c = d_.client(client);
    c.Invoke([&c, payloads = std::move(payloads),
              cb = CollapsePhases(std::move(on_phase1),
                                  std::move(on_phase2))]() mutable {
      c.AppendBatch(std::move(payloads), std::move(cb));
    });
  }

  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override {
    CloudOnlyClient& c = d_.client(client);
    c.Invoke([&c, bid, cb = std::move(cb)] {
      c.ReadBlock(bid, [cb](const Status& s, const Block& b, SimTime t) {
        cb(s, FromBlock(b, t), t);
      });
    });
  }

  void Get(size_t client, Key key, GetCb cb) override {
    CloudOnlyClient& c = d_.client(client);
    c.Invoke([&c, key, cb = std::move(cb)] {
      c.Read(key, [cb](const Status& s, bool found, const Bytes& value,
                       SimTime t) {
        GetResult r;
        r.found = found;
        r.value = value;
        r.phase2 = true;     // the commit was final
        r.verified = false;  // ...but taken on trust (no proofs)
        r.at = t;
        cb(s, std::move(r), t);
      });
    });
  }

  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override {
    CloudOnlyClient& c = d_.client(client);
    c.Invoke([&c, lo, hi, cb = std::move(cb)] {
      c.Scan(lo, hi, [cb](const Status& s, const std::vector<KvPair>& pairs,
                          SimTime t) {
        ScanResult r;
        r.pairs = pairs;
        r.phase2 = true;
        r.verified = false;
        r.at = t;
        cb(s, std::move(r), t);
      });
    });
  }

 private:
  CloudOnlyDeployment d_;
};

}  // namespace

std::string_view BackendKindToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kWedge:
      return "wedge";
    case BackendKind::kEdgeBaseline:
      return "edge-baseline";
    case BackendKind::kCloudOnly:
      return "cloud-only";
  }
  return "unknown";
}

namespace {

std::unique_ptr<StoreBackend> MakeUnroutedBackend(const StoreOptions& options) {
  switch (options.backend) {
    case BackendKind::kWedge:
      return std::make_unique<WedgeBackend>(options);
    case BackendKind::kEdgeBaseline:
      return std::make_unique<EdgeBaselineBackend>(options);
    case BackendKind::kCloudOnly:
      return std::make_unique<CloudOnlyBackend>(options);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<StoreBackend> MakeBackend(const StoreOptions& options) {
  const ShardingConfig& sharding = options.deploy.sharding;
  if (sharding.slots() < 2) {
    // 0 (off) and 1 (a single shard, no spare capacity) are both the
    // unrouted fast path.
    return MakeUnroutedBackend(options);
  }
  // The routed form: the deployment is built with one physical client
  // per (logical client, shard slot), pinned shard-aware by its sharding
  // config, and every backend kind gets the identical routing layer.
  // Slots beyond num_shards start idle; SplitShard migrates ranges onto
  // them without reshaping the grid.
  StoreOptions inner = options;
  inner.deploy.num_clients = options.deploy.num_clients * sharding.slots();
  std::unique_ptr<StoreBackend> base = MakeUnroutedBackend(inner);
  if (base == nullptr) return nullptr;
  auto table = std::make_shared<OwnershipTable>(Partitioner(sharding),
                                                sharding.slots());
  return std::make_unique<ShardRouter>(
      std::move(base), std::move(table), options.deploy.num_clients,
      options.deploy.client.verify_cache_limits, options.resharding,
      options.balancer);
}

}  // namespace wedge
