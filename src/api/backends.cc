// The three StoreBackend adapters: each maps its deployment's client API
// onto the deployment-neutral asynchronous interface of backend.h.

#include "api/backend.h"

#include <string>

#include "api/shard_router.h"
#include "baselines/baseline_deployment.h"
#include "core/deployment.h"

namespace wedge {

namespace {

GetResult FromVerified(const VerifiedGet& v, SimTime at) {
  GetResult r;
  r.found = v.found;
  r.value = v.value;
  r.version = v.version;
  r.phase2 = v.phase2;
  r.verified = true;
  r.at = at;
  return r;
}

ScanResult FromVerifiedScan(const VerifiedScan& v, SimTime at) {
  ScanResult r;
  r.pairs = v.pairs;
  r.phase2 = v.phase2;
  r.verified = true;
  r.at = at;
  return r;
}

/// Both baselines certify synchronously: their single commit point fires
/// Phase I and Phase II together, with the real block id in both acks.
StoreBackend::CommitCb CollapsePhases(StoreBackend::CommitCb on_phase1,
                                      StoreBackend::CommitCb on_phase2) {
  return [p1 = std::move(on_phase1),
          p2 = std::move(on_phase2)](const Status& s, BlockId bid, SimTime t) {
    if (p1) p1(s, bid, t);
    if (p2) p2(s, bid, t);
  };
}

BlockRead FromBlock(const Block& b, SimTime at) {
  BlockRead r;
  r.block = b;
  r.phase2 = true;  // both baselines deliver only certified/final blocks
  r.at = at;
  return r;
}

// ------------------------------------------------------------- WedgeChain

class WedgeBackend : public StoreBackend {
 public:
  explicit WedgeBackend(const StoreOptions& options) : d_(options.deploy) {}

  BackendKind kind() const override { return BackendKind::kWedge; }
  void Start() override { d_.Start(); }
  Simulation& sim() override { return d_.sim(); }
  SimNetwork& net() override { return d_.net(); }
  size_t client_count() const override { return d_.client_count(); }
  Deployment* wedge() override { return &d_; }

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override {
    d_.client(client).PutBatch(kvs, std::move(on_phase1),
                               std::move(on_phase2));
  }

  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override {
    d_.client(client).AddBatch(std::move(payloads), std::move(on_phase1),
                               std::move(on_phase2));
  }

  void Get(size_t client, Key key, GetCb cb) override {
    d_.client(client).Get(
        key, [cb = std::move(cb)](const Status& s, const VerifiedGet& v,
                                  SimTime t) { cb(s, FromVerified(v, t), t); });
  }

  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override {
    d_.client(client).Scan(
        lo, hi,
        [cb = std::move(cb)](const Status& s, const VerifiedScan& v,
                             SimTime t) {
          cb(s, FromVerifiedScan(v, t), t);
        });
  }

  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override {
    d_.client(client).ReadBlock(
        bid, [cb = std::move(cb)](const Status& s, const Block& b, bool phase2,
                                  SimTime t) {
          BlockRead r;
          r.block = b;
          r.phase2 = phase2;
          r.at = t;
          cb(s, std::move(r), t);
        });
  }

 private:
  Deployment d_;
};

// ---------------------------------------------------------- edge-baseline

class EdgeBaselineBackend : public StoreBackend {
 public:
  explicit EdgeBaselineBackend(const StoreOptions& options)
      : d_(options.deploy) {}

  BackendKind kind() const override { return BackendKind::kEdgeBaseline; }
  void Start() override { d_.Start(); }
  Simulation& sim() override { return d_.sim(); }
  SimNetwork& net() override { return d_.net(); }
  size_t client_count() const override { return d_.client_count(); }
  EdgeBaselineDeployment* edge_baseline() override { return &d_; }

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override {
    d_.client(client).WriteBatch(
        kvs, CollapsePhases(std::move(on_phase1), std::move(on_phase2)));
  }

  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override {
    d_.client(client).AppendBatch(
        std::move(payloads),
        CollapsePhases(std::move(on_phase1), std::move(on_phase2)));
  }

  void Get(size_t client, Key key, GetCb cb) override {
    d_.client(client).Get(
        key, [cb = std::move(cb)](const Status& s, const VerifiedGet& v,
                                  SimTime t) { cb(s, FromVerified(v, t), t); });
  }

  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override {
    d_.client(client).Scan(
        lo, hi,
        [cb = std::move(cb)](const Status& s, const VerifiedScan& v,
                             SimTime t) {
          cb(s, FromVerifiedScan(v, t), t);
        });
  }

  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override {
    d_.client(client).ReadBlock(
        bid, [cb = std::move(cb)](const Status& s, const Block& b, SimTime t) {
          cb(s, FromBlock(b, t), t);
        });
  }

 private:
  EdgeBaselineDeployment d_;
};

// ------------------------------------------------------------- cloud-only

class CloudOnlyBackend : public StoreBackend {
 public:
  explicit CloudOnlyBackend(const StoreOptions& options)
      : d_(options.deploy) {}

  BackendKind kind() const override { return BackendKind::kCloudOnly; }
  void Start() override { d_.Start(); }
  Simulation& sim() override { return d_.sim(); }
  SimNetwork& net() override { return d_.net(); }
  size_t client_count() const override { return d_.client_count(); }
  CloudOnlyDeployment* cloud_only() override { return &d_; }

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override {
    d_.client(client).WriteBatch(
        kvs, CollapsePhases(std::move(on_phase1), std::move(on_phase2)));
  }

  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override {
    d_.client(client).AppendBatch(
        std::move(payloads),
        CollapsePhases(std::move(on_phase1), std::move(on_phase2)));
  }

  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override {
    d_.client(client).ReadBlock(
        bid, [cb = std::move(cb)](const Status& s, const Block& b, SimTime t) {
          cb(s, FromBlock(b, t), t);
        });
  }

  void Get(size_t client, Key key, GetCb cb) override {
    d_.client(client).Read(
        key, [cb = std::move(cb)](const Status& s, bool found,
                                  const Bytes& value, SimTime t) {
          GetResult r;
          r.found = found;
          r.value = value;
          r.phase2 = true;     // the commit was final
          r.verified = false;  // ...but taken on trust (no proofs)
          r.at = t;
          cb(s, std::move(r), t);
        });
  }

  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override {
    d_.client(client).Scan(
        lo, hi,
        [cb = std::move(cb)](const Status& s, const std::vector<KvPair>& pairs,
                             SimTime t) {
          ScanResult r;
          r.pairs = pairs;
          r.phase2 = true;
          r.verified = false;
          r.at = t;
          cb(s, std::move(r), t);
        });
  }

 private:
  CloudOnlyDeployment d_;
};

}  // namespace

std::string_view BackendKindToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kWedge:
      return "wedge";
    case BackendKind::kEdgeBaseline:
      return "edge-baseline";
    case BackendKind::kCloudOnly:
      return "cloud-only";
  }
  return "unknown";
}

namespace {

std::unique_ptr<StoreBackend> MakeUnroutedBackend(const StoreOptions& options) {
  switch (options.backend) {
    case BackendKind::kWedge:
      return std::make_unique<WedgeBackend>(options);
    case BackendKind::kEdgeBaseline:
      return std::make_unique<EdgeBaselineBackend>(options);
    case BackendKind::kCloudOnly:
      return std::make_unique<CloudOnlyBackend>(options);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<StoreBackend> MakeBackend(const StoreOptions& options) {
  const ShardingConfig& sharding = options.deploy.sharding;
  if (sharding.num_shards < 2) {
    // 0 (off) and 1 (a single shard) are both the unrouted fast path.
    return MakeUnroutedBackend(options);
  }
  // The routed form: the deployment is built with one physical client
  // per (logical client, shard), pinned shard-aware by its sharding
  // config, and every backend kind gets the identical routing layer.
  StoreOptions inner = options;
  inner.deploy.num_clients = options.deploy.num_clients * sharding.num_shards;
  std::unique_ptr<StoreBackend> base = MakeUnroutedBackend(inner);
  if (base == nullptr) return nullptr;
  return std::make_unique<ShardRouter>(std::move(base), Partitioner(sharding),
                                       options.deploy.num_clients);
}

}  // namespace wedge
