// StoreOptions: builder-style configuration for the wedge::Store façade.
//
// Subsumes DeploymentConfig: the full knob surface stays reachable via
// `deploy`, while the chainable With* setters cover everything examples,
// tests and benchmarks actually tune. `backend` selects which of the
// paper's three systems answers the identical call sequence — the
// trust/latency trade-off is switchable at one call site.

#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/balancer.h"
#include "core/deployment.h"
#include "core/resharding.h"

namespace wedge {

class StoreBackend;

/// The three deployments compared throughout the paper (§VI).
enum class BackendKind {
  /// WedgeChain: Phase I commits at the edge, Phase II certified lazily
  /// by the cloud (data-free).
  kWedge,
  /// Edge-baseline: every write certified at the cloud synchronously
  /// before the edge answers (§II-C).
  kEdgeBaseline,
  /// Cloud-only: the trusted cloud serves everything; no proofs, full
  /// wide-area latency on every operation.
  kCloudOnly,
};

std::string_view BackendKindToString(BackendKind kind);

/// Counters of the async surface's admission gate and op lifecycle
/// (Store::stats().async). All counts are cumulative since Open except
/// `inflight`, a point-in-time reading.
struct AsyncStats {
  /// Operations admitted past the in-flight gate and issued to the
  /// backend (sync reads route through the async surface and count too).
  uint64_t issued = 0;
  /// Admitted operations whose backend completion arrived (whatever its
  /// status, and even if a deadline or cancel settled the handle first).
  uint64_t completed = 0;
  /// Operations refused up front with ResourceExhausted because
  /// `async_inflight_limit` admitted ops were already in flight.
  uint64_t rejected = 0;
  /// Handles settled by AsyncOp/AsyncCommit::Cancel before completion.
  uint64_t cancelled = 0;
  /// Handles settled by their per-op deadline before completion.
  uint64_t deadline_expired = 0;
  /// Admitted operations currently between issue and backend completion.
  uint64_t inflight = 0;
  /// High-water mark of `inflight` since Open.
  uint64_t inflight_peak = 0;
};

/// All BackendKind values, in presentation order — handy for "run the
/// same scenario on every system" loops.
inline constexpr BackendKind kAllBackends[] = {
    BackendKind::kWedge, BackendKind::kEdgeBaseline, BackendKind::kCloudOnly};

struct StoreOptions {
  BackendKind backend = BackendKind::kWedge;
  /// The full deployment knob surface (topology, costs, edge/cloud/client
  /// configs). The With* setters below write through to it.
  DeploymentConfig deploy;
  /// Time budget a synchronous wait (Get/Scan/ReadBlock,
  /// CommitHandle::WaitPhaseN) may block before giving up with
  /// DeadlineExceeded — virtual time under the default SimRuntime (the
  /// wait pumps the simulator), wall time under ThreadedRuntime (the
  /// wait sleeps on the completion condition variable). Every waiting
  /// call also takes a per-operation deadline override.
  SimTime op_timeout = 120 * kSecond;
  /// Wiring hook run after the deployment is constructed but before it
  /// starts — the window in which durable storage must be attached and
  /// recovered state restored (see storage/edge_storage.h).
  std::function<void(StoreBackend&)> before_start;
  /// Live-migration knobs for SplitShard / MergeShards / Rebalance.
  ReshardingConfig resharding;
  /// Façade-level retry of failed synchronous reads (Get / MultiGet /
  /// Scan / ReadBlock): Unavailable and DeadlineExceeded results are
  /// retried with bounded exponential backoff — each backoff runs the
  /// deployment, so background recovery (healed partitions, edge certify
  /// retries) makes progress between attempts. Security-class failures
  /// (a detected lie) are never retried. Disabled by default; WithRetry
  /// enables it, and Store::Open requires max_attempts >= 1 when
  /// enabled (an unbounded façade retry against a dead deployment would
  /// never return).
  RetryPolicy retry{/*enabled=*/false};
  /// Autonomous shard lifecycle (heat-driven auto-split + merge);
  /// disabled unless WithAutoBalance is called. Requires a splittable
  /// sharded store (range partitioning, or a single seed shard with
  /// spare capacity).
  BalancerPolicy balancer;
  /// Bounded in-flight admission for the async surface (AsyncPut /
  /// AsyncGet / ...): at most this many admitted operations between
  /// issue and backend completion; excess issues settle immediately
  /// with ResourceExhausted instead of queueing unbounded callback
  /// state behind a slow shard. 0 (default) = unlimited. Sync reads
  /// route through the same gate.
  size_t async_inflight_limit = 0;

  StoreOptions& WithBackend(BackendKind b) {
    backend = b;
    return *this;
  }
  StoreOptions& WithSeed(uint64_t seed) {
    deploy.seed = seed;
    return *this;
  }
  StoreOptions& WithClients(size_t n) {
    deploy.num_clients = n;
    return *this;
  }
  StoreOptions& WithEdges(size_t n) {
    deploy.num_edges = n;
    return *this;
  }
  /// Selects the runtime the deployment executes on (src/runtime/):
  /// RuntimeKind::kSim (default) is the deterministic simulator — virtual
  /// time, CostModel charging, bit-identical runs; RuntimeKind::kThreaded
  /// runs every edge and the cloud on its own OS thread with clients
  /// multiplexed over a driver pool — wall-clock time, real crypto, no
  /// cost model. Resharding and WithAutoBalance run on both: live
  /// migration gates on explicit write quiescence, not virtual time.
  StoreOptions& WithRuntime(RuntimeKind kind) {
    deploy.runtime.kind = kind;
    return *this;
  }
  /// Full runtime knob surface (driver pool width, inbox capacity).
  StoreOptions& WithRuntimeConfig(const RuntimeConfig& config) {
    deploy.runtime = config;
    return *this;
  }
  /// WAN shaping under RuntimeKind::kThreaded: every cross-Dc message
  /// (and socket frame) is delayed by the matrix's one-way latency for
  /// the (sender Dc, receiver Dc) link, plus up to `jitter_frac` of it.
  /// LatencyMatrix::Paper() reproduces the paper's five-region geography
  /// on real threads. Implies WithRuntime(kThreaded) takes effect — the
  /// simulator has its own SimNetwork latency model and ignores this.
  StoreOptions& WithWan(const LatencyMatrix& matrix,
                        double jitter_frac = 0.0) {
    deploy.runtime.wan.enabled = true;
    deploy.runtime.wan.matrix = matrix;
    deploy.runtime.wan.jitter_frac = jitter_frac;
    return *this;
  }
  /// Routes every message through SocketTransport's real TCP framing
  /// (see src/runtime/socket_transport.h). With no arguments the
  /// process self-connects over loopback — same in-process topology,
  /// every frame on a real socket. A hub process (the cloud) sets
  /// `listen_port`; a spoke dials `connect_host:connect_port`. All
  /// processes of one deployment must share `secret_seed` — it derives
  /// the link MAC key. Requires RuntimeKind::kThreaded.
  StoreOptions& WithSocketTransport(uint16_t listen_port = 0,
                                    std::string connect_host = {},
                                    uint16_t connect_port = 0,
                                    uint64_t secret_seed = 0) {
    deploy.runtime.socket.enabled = true;
    deploy.runtime.socket.listen_port = listen_port;
    deploy.runtime.socket.connect_host = std::move(connect_host);
    deploy.runtime.socket.connect_port = connect_port;
    deploy.runtime.socket.secret_seed = secret_seed;
    return *this;
  }
  /// Key-partitions the store across `n` shards (one per edge node),
  /// routing every operation through the api-layer ShardRouter. Raises
  /// num_edges to at least `n` (call WithEdges afterwards to run spare
  /// edges; Store::Open rejects n > num_edges). For ShardScheme::kRange,
  /// `range_span` must bound the key domain: keys in [0, range_span) are
  /// cut into contiguous slices and keys beyond it belong to the last
  /// shard. n <= 1 keeps the unsharded fast path.
  StoreOptions& WithShards(size_t n, ShardScheme scheme = ShardScheme::kHash,
                           uint64_t range_span = 0) {
    deploy.sharding.num_shards = n;
    deploy.sharding.scheme = scheme;
    deploy.sharding.range_span = range_span;
    deploy.num_edges =
        std::max(deploy.num_edges, deploy.sharding.slots());
    return *this;
  }
  /// Provisions `m` physical shard slots (edges, per-shard clients, the
  /// router's block-id modulus) of which only the WithShards count start
  /// live. Spare slots own no keys until SplitShard migrates a hot
  /// shard's range onto one — the grid never changes shape at runtime,
  /// which is what keeps block ids and client pinning stable across
  /// ownership epochs. Raises num_edges to at least `m`.
  StoreOptions& WithShardCapacity(size_t m) {
    deploy.sharding.capacity = m;
    deploy.num_edges = std::max(deploy.num_edges, deploy.sharding.slots());
    return *this;
  }
  /// Virtual time a SplitShard waits between fencing the moving range
  /// and the export scan (see ReshardingConfig::drain_delay).
  StoreOptions& WithDrainDelay(SimTime delay) {
    resharding.drain_delay = delay;
    return *this;
  }
  /// Turns on the autonomous shard lifecycle: a background policy tick
  /// reads the router's per-epoch heat window against the policy's
  /// high/low watermarks and calls SplitShard / MergeShards on its own
  /// (with hysteresis and cooldown so oscillating load doesn't thrash
  /// migrations). Pass a BalancerPolicy to tune the knobs; the default
  /// policy is used when omitted. Requires a splittable sharded store.
  StoreOptions& WithAutoBalance(BalancerPolicy policy = {}) {
    balancer = policy;
    balancer.enabled = true;
    return *this;
  }
  StoreOptions& WithLocations(Dc client, Dc edge, Dc cloud) {
    deploy.client_dc = client;
    deploy.edge_dc = edge;
    deploy.cloud_dc = cloud;
    return *this;
  }
  StoreOptions& WithOpsPerBlock(size_t n) {
    deploy.edge.ops_per_block = n;
    return *this;
  }
  /// LSMerkle structure: level thresholds plus the page split size (kept
  /// consistent between edge and cloud, as merges require).
  StoreOptions& WithLsm(std::vector<size_t> level_thresholds,
                        size_t target_page_pairs) {
    deploy.edge.lsm.level_thresholds = std::move(level_thresholds);
    deploy.edge.lsm.target_page_pairs = target_page_pairs;
    deploy.cloud.target_page_pairs = target_page_pairs;
    return *this;
  }
  StoreOptions& WithGossipPeriod(SimTime period) {
    deploy.cloud.gossip_period = period;
    return *this;
  }
  StoreOptions& WithNoopMergePeriod(SimTime period) {
    deploy.edge.noop_merge_period = period;
    return *this;
  }
  StoreOptions& WithFreshnessWindow(SimTime window) {
    deploy.client.freshness_window = window;
    return *this;
  }
  StoreOptions& WithProofTimeout(SimTime timeout) {
    deploy.client.proof_timeout = timeout;
    return *this;
  }
  /// Client-side memoization of verified proof material (root/block
  /// certificates, level-part proofs) across reads. On by default; turn
  /// off to reproduce the paper's verify-every-response read cost.
  StoreOptions& WithVerifierCache(bool on) {
    deploy.client.verify_cache = on;
    return *this;
  }
  /// Per-shard verifier-cache sizing unit (see
  /// ClientConfig::verify_cache_limits).
  StoreOptions& WithVerifierCacheLimits(VerifierCache::Limits limits) {
    deploy.client.verify_cache_limits = limits;
    return *this;
  }
  StoreOptions& WithOpTimeout(SimTime timeout) {
    op_timeout = timeout;
    return *this;
  }
  /// Turns on façade-level read retry (see `retry`). The policy must
  /// bound its attempts: Store::Open rejects max_attempts == 0.
  StoreOptions& WithRetry(RetryPolicy policy) {
    retry = policy;
    retry.enabled = true;
    return *this;
  }
  /// Edge-side certify retry knobs (EdgeConfig::certify_retry): how a
  /// WedgeChain edge re-sends uncertified block digests with exponential
  /// backoff through a cloud outage. Enabled by default; pass a policy
  /// with enabled = false to reproduce fire-and-forget certification.
  StoreOptions& WithCertifyRetry(RetryPolicy policy) {
    deploy.edge.certify_retry = policy;
    return *this;
  }
  /// Ceiling on one live-migration attempt, fence to epoch-install (see
  /// ReshardingConfig::migration_timeout): a source or destination that
  /// crashes mid-migration aborts the attempt cleanly instead of
  /// wedging the fence forever. 0 disables the watchdog.
  StoreOptions& WithMigrationTimeout(SimTime timeout) {
    resharding.migration_timeout = timeout;
    return *this;
  }
  /// Caps admitted-but-uncompleted async operations (see
  /// `async_inflight_limit`); a slow shard then backpressures the
  /// issuer with ResourceExhausted instead of ballooning memory.
  StoreOptions& WithAsyncInflightLimit(size_t limit) {
    async_inflight_limit = limit;
    return *this;
  }
  StoreOptions& WithBeforeStart(std::function<void(StoreBackend&)> hook) {
    before_start = std::move(hook);
    return *this;
  }
};

}  // namespace wedge
