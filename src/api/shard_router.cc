#include "api/shard_router.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace wedge {

namespace {

/// Join state for one phase of a multi-shard write: the phase reports
/// once every involved shard has reported it, at the latest sub-commit
/// time, carrying the (globalized) block id of the lowest involved shard
/// so the reported id is deterministic. Sub-commits land on different
/// shard executors under ThreadedRuntime, so the join carries its own
/// lock; the phase callback fires outside it.
struct PhaseJoin {
  std::mutex mu;
  size_t waiting = 0;
  Status status;
  size_t bid_shard = SIZE_MAX;
  BlockId bid = 0;
  SimTime at = 0;
};

void RecordPhase(PhaseJoin* join, size_t shard, const Status& s, BlockId bid,
                 SimTime t, const StoreBackend::CommitCb& done) {
  Status status;
  BlockId out_bid = 0;
  SimTime at = 0;
  {
    std::lock_guard<std::mutex> lock(join->mu);
    MergeStatusBySeverity(&join->status, s);
    if (s.ok() && shard < join->bid_shard) {
      join->bid_shard = shard;
      join->bid = bid;
    }
    join->at = std::max(join->at, t);
    if (--join->waiting > 0) return;
    status = join->status;
    out_bid = join->bid;
    at = join->at;
  }
  if (done) done(status, out_bid, at);
}

/// Wraps a commit callback so acked block ids come out in global form.
StoreBackend::CommitCb TranslateBidsCb(StoreBackend::CommitCb cb, size_t shard,
                                       size_t slots) {
  if (!cb) return nullptr;
  return [cb = std::move(cb), shard, slots](const Status& s, BlockId bid,
                                            SimTime t) {
    cb(s, ShardRouter::GlobalBlockId(bid, shard, slots), t);
  };
}

}  // namespace

ShardRouter::ShardRouter(std::unique_ptr<StoreBackend> inner,
                         std::shared_ptr<OwnershipTable> table,
                         size_t logical_clients,
                         VerifierCache::Limits cache_unit,
                         ReshardingConfig resharding, BalancerPolicy balancer)
    : inner_(std::move(inner)),
      table_(std::move(table)),
      logical_clients_(logical_clients),
      cache_unit_(cache_unit),
      client_epochs_(logical_clients, table_->epoch()) {
  // Migration state machines run on the runtime's control executor:
  // inline simulation events under SimRuntime, the control worker thread
  // under ThreadedRuntime (the operator entry points below post their
  // bodies there, so coordinator state stays control-confined on every
  // runtime).
  coordinator_ = std::make_unique<ReshardingCoordinator>(
      inner_->runtime().ControlExecutor(), table_, this, resharding);
  stats_.ops_per_shard.assign(table_->capacity(), 0);
  write_gauges_.resize(table_->capacity());
  for (auto& g : write_gauges_) g = std::make_shared<WriteGauge>();
  load_ = std::make_shared<ShardLoadStats>();
  load_->signals.Resize(table_->capacity());
  if (balancer.enabled) {
    // The balancer reads this router's own heat window and actuates
    // through the same coordinator the operator calls use, so manual
    // and autonomous migrations share the single-in-flight rule.
    AutoBalancer::Hooks hooks;
    hooks.heat = [this]() {
      std::lock_guard<std::mutex> lock(mu_);
      return stats_.ops_per_shard;
    };
    hooks.split = [this](size_t shard, ReshardingCoordinator::SplitCb cb) {
      coordinator_->SplitShard(shard, std::move(cb));
    };
    hooks.merge = [this](size_t shard, ReshardingCoordinator::SplitCb cb) {
      coordinator_->MergeShards(shard, std::move(cb));
    };
    hooks.busy = [this]() { return coordinator_->migration_in_flight(); };
    hooks.signals = [load = load_]() {
      std::lock_guard<std::mutex> lock(load->mu);
      return load->signals;
    };
    balancer_ = std::make_unique<AutoBalancer>(
        inner_->runtime().ControlExecutor(), table_, balancer,
        std::move(hooks));
  }
  ResizeVerifierCaches();
}

RouterStats ShardRouter::router_stats_snapshot() const {
  RouterStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  std::lock_guard<std::mutex> lock(load_->mu);
  out.load = load_->signals;
  return out;
}

size_t ShardRouter::RouteKeyLocked(size_t client, Key key) {
  const OwnershipEpoch known = client_epochs_[client];
  const OwnershipEpoch current = table_->epoch();
  size_t shard = table_->ShardOf(key, known);
  if (known != current) {
    // The request carried a stale epoch: re-route deterministically to
    // the current owner and refresh the client's view. Never an error —
    // the client simply learns the new map on its next touch.
    const size_t actual = table_->ShardOf(key, current);
    if (actual != shard) {
      stats_.stale_redirects++;
      shard = actual;
    }
    client_epochs_[client] = current;
    stats_.epoch_refreshes++;
  }
  stats_.ops_per_shard[shard]++;
  return shard;
}

size_t ShardRouter::RouteKey(size_t client, Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  return RouteKeyLocked(client, key);
}

void ShardRouter::RefreshEpochLocked(size_t client) {
  const OwnershipEpoch current = table_->epoch();
  if (client_epochs_[client] != current) {
    client_epochs_[client] = current;
    stats_.epoch_refreshes++;
  }
}

void ShardRouter::PutBatch(size_t client,
                           const std::vector<std::pair<Key, Bytes>>& kvs,
                           CommitCb on_phase1, CommitCb on_phase2) {
  const size_t slots = table_->capacity();
  // Split by owning shard under the client's (refreshed) epoch,
  // preserving the caller's per-shard put order (version order within a
  // shard must match the unsharded sequence). Keys inside an active
  // migration fence are parked and flushed at epoch install, re-routed
  // under the then-current owner. Routing runs under mu_; the inner
  // sub-calls are issued after it is released.
  std::map<size_t, std::vector<std::pair<Key, Bytes>>> by_shard;
  std::map<size_t, std::shared_ptr<WriteGauge>> gauges;
  std::vector<std::pair<Key, Bytes>> parked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& kv : kvs) {
      if (fence_active_ && kv.first >= fence_lo_ && kv.first <= fence_hi_) {
        parked.push_back(kv);
      } else {
        by_shard[RouteKeyLocked(client, kv.first)].push_back(kv);
      }
    }
    if (!parked.empty()) {
      // The parking path is still an epoch touch: a batch that falls
      // entirely inside the fence must refresh the client's view like
      // any routed write would (its keys join the heat window at flush
      // time, attributed to the owner they commit on — see the flush
      // closure).
      RefreshEpochLocked(client);
    }
    // Gauge each involved shard in the same critical section that routed
    // the batch: a fence swapping the gauge either happens before this
    // routing (the write counts on the fresh gauge) or sees the count it
    // must wait out. The sub-batch holds its gauge until Phase I.
    for (const auto& [shard, sub] : by_shard) {
      (void)sub;
      write_gauges_[shard]->Add();
      gauges[shard] = write_gauges_[shard];
    }
  }
  if (by_shard.empty() && parked.empty()) {
    // Empty batch: keep the unsharded contract (one call, to the logical
    // client's home slot) rather than inventing a zero-call commit.
    const size_t home = client % slots;
    by_shard[home] = {};
    std::lock_guard<std::mutex> lock(mu_);
    write_gauges_[home]->Add();
    gauges[home] = write_gauges_[home];
  }

  auto p1 = std::make_shared<PhaseJoin>();
  auto p2 = std::make_shared<PhaseJoin>();
  p1->waiting = p2->waiting = by_shard.size() + (parked.empty() ? 0 : 1);

  auto issue = [this, client, slots, p1, p2, on_phase1, on_phase2](
                   size_t shard, std::vector<std::pair<Key, Bytes>> sub,
                   std::shared_ptr<WriteGauge> gauge) {
    const size_t phys = PhysicalClient(client, shard);
    if (!inner_->EdgeReachable(phys)) {
      // Writes cannot be cloud-served (only the owning edge holds the
      // shard's tree); fail the sub-batch fast instead of letting the
      // whole batch hang to the op deadline.
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.unreachable_rejects++;
      }
      const Status down = Status::Unavailable(
          "shard " + std::to_string(shard) +
          "'s edge is crashed or partitioned away");
      const SimTime now = runtime().Now();
      RecordPhase(p1.get(), shard, down, 0, now, on_phase1);
      RecordPhase(p2.get(), shard, down, 0, now, on_phase2);
      gauge->Done();  // failed fast — resolved for quiescence purposes
      return;
    }
    {
      // Write-byte attribution at issue time, to the owner the
      // sub-batch commits on (parked writes land here at flush, already
      // re-routed).
      uint64_t bytes = 0;
      for (const auto& kv : sub) bytes += kv.second.size();
      std::lock_guard<std::mutex> lock(load_->mu);
      load_->signals.bytes_written[shard] += bytes;
    }
    inner_->PutBatch(
        phys, sub,
        [p1, shard, slots, on_phase1, gauge = std::move(gauge)](
            const Status& st, BlockId bid, SimTime t) {
          RecordPhase(p1.get(), shard, st, GlobalBlockId(bid, shard, slots),
                      t, on_phase1);
          gauge->Done();  // Phase I reached: this write no longer blocks
                          // a fence's quiescence gate
        },
        [p2, shard, slots, on_phase2](const Status& st, BlockId bid,
                                      SimTime t) {
          RecordPhase(p2.get(), shard, st, GlobalBlockId(bid, shard, slots),
                      t, on_phase2);
        });
  };

  for (auto& [shard, sub] : by_shard) {
    issue(shard, std::move(sub), std::move(gauges[shard]));
  }

  if (!parked.empty()) {
    // The parked portion joins as one unit; when the fence lifts it
    // re-splits under the then-current table (a completed split divides
    // it between source and destination), widening the joins in place
    // before any of its sub-calls can resolve. LiftFence runs on the
    // coordinator's control executor, so the flush closure routes under
    // mu_ like any live batch and gauges its sub-batches at flush time
    // (on the post-swap gauges — these writes are post-fence by
    // definition).
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writes_parked++;
    parked_.push_back([this, client, parked = std::move(parked), p1, p2,
                       issue]() {
      std::map<size_t, std::vector<std::pair<Key, Bytes>>> by;
      std::map<size_t, std::shared_ptr<WriteGauge>> flush_gauges;
      {
        std::lock_guard<std::mutex> route_lock(mu_);
        for (const auto& kv : parked) {
          by[RouteKeyLocked(client, kv.first)].push_back(kv);
        }
        for (const auto& [shard, sub] : by) {
          (void)sub;
          write_gauges_[shard]->Add();
          flush_gauges[shard] = write_gauges_[shard];
        }
      }
      {
        std::lock_guard<std::mutex> p1_lock(p1->mu);
        p1->waiting += by.size() - 1;
      }
      {
        std::lock_guard<std::mutex> p2_lock(p2->mu);
        p2->waiting += by.size() - 1;
      }
      for (auto& [shard, sub] : by) {
        issue(shard, std::move(sub), std::move(flush_gauges[shard]));
      }
    });
  }
}

void ShardRouter::Append(size_t client, std::vector<Bytes> payloads,
                         CommitCb on_phase1, CommitCb on_phase2) {
  // Raw appends carry no key; the batch stays whole (one append batch =
  // one block's worth of entries) on the logical client's home slot,
  // which never changes across epochs — append streams are not migrated.
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshEpochLocked(client);
  }
  const size_t slots = table_->capacity();
  const size_t home = client % slots;
  inner_->Append(PhysicalClient(client, home), std::move(payloads),
                 TranslateBidsCb(std::move(on_phase1), home, slots),
                 TranslateBidsCb(std::move(on_phase2), home, slots));
}

void ShardRouter::Get(size_t client, Key key, GetCb cb) {
  const size_t shard = RouteKey(client, key);
  const size_t phys = PhysicalClient(client, shard);
  // Per-shard read-latency/bytes signal for the balancer. The wrapper
  // captures the load stats by shared_ptr, never `this` — a completion
  // landing during router teardown records into still-live state.
  const SimTime started = runtime().Now();
  cb = [cb = std::move(cb), load = load_, shard, started](const Status& st,
                                                          GetResult r,
                                                          SimTime t) {
    if (st.ok()) {
      std::lock_guard<std::mutex> lock(load->mu);
      load->signals.read_latency[shard].Record(t - started);
      load->signals.bytes_read[shard] += r.value.size();
    }
    if (cb) cb(st, std::move(r), t);
  };
  if (!inner_->EdgeReachable(phys)) {
    // Failure-aware degrade: the owning edge is crashed or partitioned
    // away, so serve the read from the cloud's backup instead — slower
    // (wide-area round trip) but still certificate-verified. The store
    // stays available through the fault window rather than timing out.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.failovers++;
    }
    inner_->CloudGet(phys, key, std::move(cb));
    return;
  }
  inner_->Get(phys, key, std::move(cb));
}

void ShardRouter::Scan(size_t client, Key lo, Key hi, ScanCb cb) {
  // Sub-scans complete on different shard executors under
  // ThreadedRuntime; the stitch join carries its own lock and the final
  // callback fires outside it.
  struct ScanJoin {
    std::mutex mu;
    size_t waiting = 0;
    Status status;
    bool phase2 = true;
    bool verified = true;
    SimTime at = 0;
    std::vector<KvPair> pairs;
  };

  // Route under the epoch current at issue time, and filter each
  // sub-scan's contribution by that same epoch: a migration installing
  // a newer epoch mid-scan must not drop pairs the source legitimately
  // owned (and still stores) under the epoch this scan was routed by.
  const std::vector<OwnedSlice> slices =
      lo > hi ? std::vector<OwnedSlice>{} : table_->SlicesTouching(lo, hi);
  OwnershipEpoch at_epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshEpochLocked(client);
    at_epoch = table_->epoch();
    for (const OwnedSlice& slice : slices) {
      stats_.ops_per_shard[slice.shard]++;
    }
  }
  if (slices.empty()) {
    // An empty slice set (an inverted lo > hi range — live slices tile
    // the whole key domain, so nothing else produces one) must still
    // answer: with zero sub-scans the join below would start at
    // waiting == 0 and never invoke the callback, hanging any
    // wait-for-completion caller. An empty range is vacuously complete
    // and verified.
    if (cb) {
      ScanResult empty;
      empty.phase2 = true;
      empty.verified = true;
      empty.at = runtime().Now();
      const SimTime at = empty.at;
      cb(Status::OK(), std::move(empty), at);
    }
    return;
  }

  auto join = std::make_shared<ScanJoin>();
  join->waiting = slices.size();
  for (const OwnedSlice& slice : slices) {
    auto sub_cb =
        [join, slice, at_epoch, cb, table = table_](const Status& st,
                                                    ScanResult r, SimTime t) {
          Status status;
          ScanResult out;
          {
            std::lock_guard<std::mutex> lock(join->mu);
            MergeStatusBySeverity(&join->status, st);
            join->at = std::max(join->at, t);
            if (st.ok()) {
              join->phase2 = join->phase2 && r.phase2;
              join->verified = join->verified && r.verified;
              // Proof boundary: this sub-scan contributes only keys its
              // shard owns under the scan's epoch. On the edge backends
              // this is a no-op (each edge's tree holds only its shard);
              // on cloud-only, where every sub-scan hits the same
              // trusted server, it deduplicates the fan-out.
              for (auto& p : r.pairs) {
                if (table->ShardOf(p.key, at_epoch) == slice.shard) {
                  join->pairs.push_back(std::move(p));
                }
              }
            }
            if (--join->waiting > 0) return;
            status = join->status;
            if (status.ok()) {
              std::sort(join->pairs.begin(), join->pairs.end(),
                        [](const KvPair& a, const KvPair& b) {
                          return a.key < b.key;
                        });
              out.pairs = std::move(join->pairs);
              out.phase2 = join->phase2;
              out.verified = join->verified;
            }
            out.at = join->at;
          }
          if (!cb) return;
          const SimTime at = out.at;
          if (!status.ok()) {
            cb(status, ScanResult{}, at);
          } else {
            cb(status, std::move(out), at);
          }
        };
    const size_t phys = PhysicalClient(client, slice.shard);
    if (!inner_->EdgeReachable(phys)) {
      // A sub-scan against an unreachable edge cannot be cloud-served
      // with completeness proofs; fail it fast (which fails the stitched
      // scan) rather than hanging the whole fan-out to the op deadline.
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.unreachable_rejects++;
      }
      sub_cb(Status::Unavailable("shard " + std::to_string(slice.shard) +
                                 "'s edge is crashed or partitioned away"),
             ScanResult{}, runtime().Now());
      continue;
    }
    inner_->Scan(phys, slice.lo, slice.hi, std::move(sub_cb));
  }
}

void ShardRouter::ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) {
  const size_t slots = table_->capacity();
  const size_t shard = ShardOfBlockId(bid, slots);
  inner_->ReadBlock(
      PhysicalClient(client, shard), InnerBlockId(bid, slots),
      [cb = std::move(cb), shard, slots](const Status& st, BlockRead r,
                                         SimTime t) {
        // Hand the block back under the id the caller asked by.
        r.block.id = GlobalBlockId(r.block.id, shard, slots);
        cb(st, std::move(r), t);
      });
}

// -------------------------------------------------------------- resharding
//
// The operator entry points post their bodies onto the runtime's control
// executor — inline under the simulator (identical schedules), the
// control worker under ThreadedRuntime — so the coordinator's state
// machine runs control-confined on every runtime. The balancer's hooks
// already run there, so manual and autonomous migrations serialize
// naturally against the single-in-flight rule.

void ShardRouter::SplitShard(size_t shard, SplitCb cb) {
  runtime().ControlExecutor()->Post([this, shard, cb = std::move(cb)]() {
    coordinator_->SplitShard(shard, std::move(cb));
  });
}

void ShardRouter::MergeShards(size_t shard, SplitCb cb) {
  runtime().ControlExecutor()->Post([this, shard, cb = std::move(cb)]() {
    coordinator_->MergeShards(shard, std::move(cb));
  });
}

void ShardRouter::Rebalance(SplitCb cb) {
  runtime().ControlExecutor()->Post(
      [this, cb = std::move(cb)]() { RebalanceOnControl(std::move(cb)); });
}

void ShardRouter::RebalanceOnControl(SplitCb cb) {
  if (!table_->splittable()) {
    // Delegate for the coordinator's precise refusal.
    coordinator_->SplitShard(0, std::move(cb));
    return;
  }
  // Heat-driven victim selection: the hottest shard (routed keyed ops
  // since the last epoch change) that can actually be split — idle
  // slots and shards whose widest slice is a single key are skipped.
  size_t victim = SIZE_MAX;
  uint64_t hottest = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 0; s < table_->capacity(); ++s) {
      const std::optional<OwnedSlice> slice = table_->WidestSliceOf(s);
      if (!slice.has_value() || slice->lo >= slice->hi) continue;
      if (victim == SIZE_MAX || stats_.ops_per_shard[s] > hottest) {
        victim = s;
        hottest = stats_.ops_per_shard[s];
      }
    }
  }
  if (victim == SIZE_MAX) {
    if (cb) {
      cb(Status::FailedPrecondition("no live shard to rebalance"),
         SplitReport{}, runtime().Now());
    }
    return;
  }
  coordinator_->SplitShard(victim, std::move(cb));
}

void ShardRouter::ExportRange(size_t shard, Key lo, Key hi, ExportCb cb) {
  // The export is a completeness-verified scan through the source
  // shard's own client (logical client 0's sub-client): a truncating or
  // tampering source fails verification there as SecurityViolation and
  // the failure aborts the migration upstream.
  inner_->Scan(PhysicalClient(0, shard), lo, hi,
               [cb = std::move(cb)](const Status& st, ScanResult r,
                                    SimTime t) {
                 cb(st, std::move(r.pairs), t);
               });
}

void ShardRouter::ImportPairs(size_t shard, std::vector<KvPair> pairs,
                              PhaseCb applied, PhaseCb certified) {
  // The destination ingests through its normal write path, so the
  // migrated range gets the usual two commit points: Phase I (servable,
  // the handoff point) now, the cloud's certificate lazily.
  std::vector<std::pair<Key, Bytes>> kvs;
  kvs.reserve(pairs.size());
  for (auto& p : pairs) kvs.emplace_back(p.key, std::move(p.value));
  inner_->PutBatch(
      PhysicalClient(0, shard), kvs,
      [applied = std::move(applied)](const Status& st, BlockId, SimTime t) {
        if (applied) applied(st, t);
      },
      [certified = std::move(certified)](const Status& st, BlockId,
                                         SimTime t) {
        if (certified) certified(st, t);
      });
}

void ShardRouter::FenceRange(size_t source, Key lo, Key hi,
                             std::function<void()> quiesced) {
  // Raise the fence and swap the source's gauge in one routing critical
  // section: every write routed before the swap counts on `old` (the
  // set quiescence waits out); every later one either parks on the
  // fence or counts on the fresh gauge. Arm fires `quiesced` when the
  // last pre-fence write reaches Phase I — immediately, outside mu_,
  // when none are in flight.
  std::shared_ptr<WriteGauge> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fence_active_ = true;
    fence_lo_ = lo;
    fence_hi_ = hi;
    old = std::move(write_gauges_[source]);
    write_gauges_[source] = std::make_shared<WriteGauge>();
  }
  old->Arm(std::move(quiesced));
}

void ShardRouter::LiftFence() {
  std::vector<std::function<void()>> parked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fence_active_ = false;
    parked = std::move(parked_);
    parked_.clear();
  }
  for (auto& flush : parked) flush();
}

void ShardRouter::OnEpochInstalled(const MigrationReport& report) {
  // The source's clients may hold verified proof material for keys that
  // just moved; drop it so nothing covering the migrated range can be
  // replayed against the old owner. On a split the invalidation flows
  // toward the idle destination; on a merge, toward the surviving
  // neighbour — either way report.source is the shard whose clients
  // must forget the range.
  for (size_t c = 0; c < logical_clients_; ++c) {
    inner_->InvalidateVerifierRange(PhysicalClient(c, report.source),
                                    report.moved_lo, report.moved_hi);
  }
  ResizeVerifierCaches();
  // A new epoch opens a new heat window for Rebalance.
  std::lock_guard<std::mutex> lock(mu_);
  stats_.ops_per_shard.assign(table_->capacity(), 0);
}

void ShardRouter::ResizeVerifierCaches() {
  // Per-shard cache sizing: each physical client's budget follows the
  // key-span fraction its shard owns (total per logical client =
  // cache_unit_ × capacity), with a small floor for idle slots. A split
  // hands the moved range's budget to the destination along with the
  // range, so the warm hit rate on a hot range survives its own split.
  // Hash tables interleave ownership evenly and keep the unit as-is.
  if (!table_->splittable()) return;
  const std::vector<double> fractions = table_->OwnedFractions();
  const double slots = static_cast<double>(table_->capacity());
  for (size_t s = 0; s < table_->capacity(); ++s) {
    const double scale = fractions[s] * slots;
    VerifierCache::Limits limits = cache_unit_;
    limits.max_blocks = std::max<size_t>(
        8, static_cast<size_t>(static_cast<double>(cache_unit_.max_blocks) *
                               scale));
    limits.max_parts = std::max<size_t>(
        16, static_cast<size_t>(static_cast<double>(cache_unit_.max_parts) *
                                scale));
    for (size_t c = 0; c < logical_clients_; ++c) {
      inner_->ResizeVerifierCache(PhysicalClient(c, s), limits);
    }
  }
}

}  // namespace wedge
