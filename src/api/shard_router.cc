#include "api/shard_router.h"

#include <algorithm>
#include <map>

namespace wedge {

namespace {

/// Trust-severity status merge: the first error wins, except that a
/// security-class status (a detected lie) always displaces a benign one —
/// a slow or unavailable shard must never mask a tampering shard.
void MergeStatus(Status* into, const Status& s) {
  if (s.ok()) return;
  const bool s_security = s.IsSecurityViolation() || s.IsMaliciousBehavior();
  const bool into_security =
      into->IsSecurityViolation() || into->IsMaliciousBehavior();
  if (into->ok() || (s_security && !into_security)) *into = s;
}

/// Join state for one phase of a multi-shard write: the phase reports
/// once every involved shard has reported it, at the latest sub-commit
/// time, carrying the (globalized) block id of the lowest involved shard
/// so the reported id is deterministic.
struct PhaseJoin {
  size_t waiting = 0;
  Status status;
  size_t bid_shard = SIZE_MAX;
  BlockId bid = 0;
  SimTime at = 0;
};

void RecordPhase(PhaseJoin* join, size_t shard, const Status& s, BlockId bid,
                 SimTime t, const StoreBackend::CommitCb& done) {
  MergeStatus(&join->status, s);
  if (s.ok() && shard < join->bid_shard) {
    join->bid_shard = shard;
    join->bid = bid;
  }
  join->at = std::max(join->at, t);
  if (--join->waiting == 0 && done) done(join->status, join->bid, join->at);
}

}  // namespace

ShardRouter::ShardRouter(std::unique_ptr<StoreBackend> inner,
                         Partitioner partitioner, size_t logical_clients)
    : inner_(std::move(inner)),
      partitioner_(partitioner),
      logical_clients_(logical_clients) {}

StoreBackend::CommitCb ShardRouter::TranslateBids(CommitCb cb,
                                                  size_t shard) const {
  if (!cb) return nullptr;
  const size_t shards = partitioner_.shards();
  return [cb = std::move(cb), shard, shards](const Status& s, BlockId bid,
                                             SimTime t) {
    cb(s, GlobalBlockId(bid, shard, shards), t);
  };
}

void ShardRouter::PutBatch(size_t client,
                           const std::vector<std::pair<Key, Bytes>>& kvs,
                           CommitCb on_phase1, CommitCb on_phase2) {
  const size_t shards = partitioner_.shards();
  // Split by owning shard, preserving the caller's per-shard put order
  // (version order within a shard must match the unsharded sequence).
  std::map<size_t, std::vector<std::pair<Key, Bytes>>> by_shard;
  for (const auto& kv : kvs) {
    by_shard[partitioner_.ShardOf(kv.first)].push_back(kv);
  }
  if (by_shard.empty()) {
    // Empty batch: keep the unsharded contract (one call, to the logical
    // client's home shard) rather than inventing a zero-call commit.
    by_shard[client % shards] = {};
  }

  auto p1 = std::make_shared<PhaseJoin>();
  auto p2 = std::make_shared<PhaseJoin>();
  p1->waiting = p2->waiting = by_shard.size();
  for (auto& [shard, sub] : by_shard) {
    const size_t s = shard;
    inner_->PutBatch(
        PhysicalClient(client, s), sub,
        [p1, s, shards, on_phase1](const Status& st, BlockId bid, SimTime t) {
          RecordPhase(p1.get(), s, st, GlobalBlockId(bid, s, shards), t,
                      on_phase1);
        },
        [p2, s, shards, on_phase2](const Status& st, BlockId bid, SimTime t) {
          RecordPhase(p2.get(), s, st, GlobalBlockId(bid, s, shards), t,
                      on_phase2);
        });
  }
}

void ShardRouter::Append(size_t client, std::vector<Bytes> payloads,
                         CommitCb on_phase1, CommitCb on_phase2) {
  // Raw appends carry no key; the batch stays whole (one append batch =
  // one block's worth of entries) on the logical client's home shard.
  const size_t home = client % partitioner_.shards();
  inner_->Append(PhysicalClient(client, home), std::move(payloads),
                 TranslateBids(std::move(on_phase1), home),
                 TranslateBids(std::move(on_phase2), home));
}

void ShardRouter::Get(size_t client, Key key, GetCb cb) {
  inner_->Get(PhysicalClient(client, partitioner_.ShardOf(key)), key,
              std::move(cb));
}

void ShardRouter::Scan(size_t client, Key lo, Key hi, ScanCb cb) {
  struct ScanJoin {
    size_t waiting = 0;
    Status status;
    bool phase2 = true;
    bool verified = true;
    SimTime at = 0;
    std::vector<KvPair> pairs;
  };

  const size_t shards = partitioner_.shards();
  std::vector<size_t> targets;
  for (size_t s = 0; s < shards; ++s) {
    if (partitioner_.ScanTouches(s, lo, hi)) targets.push_back(s);
  }

  auto join = std::make_shared<ScanJoin>();
  join->waiting = targets.size();
  for (size_t s : targets) {
    const auto [slo, shi] = partitioner_.ClampToShard(s, lo, hi);
    inner_->Scan(
        PhysicalClient(client, s), slo, shi,
        [join, s, cb, part = partitioner_](const Status& st, ScanResult r,
                                           SimTime t) {
          MergeStatus(&join->status, st);
          join->at = std::max(join->at, t);
          if (st.ok()) {
            join->phase2 = join->phase2 && r.phase2;
            join->verified = join->verified && r.verified;
            // Proof boundary: shard s contributes only keys it owns. On
            // the edge backends this is a no-op (each edge's tree holds
            // only its shard); on cloud-only, where every sub-scan hits
            // the same trusted server, it deduplicates the fan-out.
            for (auto& p : r.pairs) {
              if (part.ShardOf(p.key) == s) join->pairs.push_back(std::move(p));
            }
          }
          if (--join->waiting > 0) return;
          if (!join->status.ok()) {
            if (cb) cb(join->status, ScanResult{}, join->at);
            return;
          }
          std::sort(join->pairs.begin(), join->pairs.end(),
                    [](const KvPair& a, const KvPair& b) {
                      return a.key < b.key;
                    });
          ScanResult out;
          out.pairs = std::move(join->pairs);
          out.phase2 = join->phase2;
          out.verified = join->verified;
          out.at = join->at;
          if (cb) cb(join->status, std::move(out), join->at);
        });
  }
}

void ShardRouter::ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) {
  const size_t shards = partitioner_.shards();
  const size_t s = ShardOfBlockId(bid, shards);
  inner_->ReadBlock(
      PhysicalClient(client, s), InnerBlockId(bid, shards),
      [cb = std::move(cb), s, shards](const Status& st, BlockRead r,
                                      SimTime t) {
        // Hand the block back under the id the caller asked by.
        r.block.id = GlobalBlockId(r.block.id, s, shards);
        cb(st, std::move(r), t);
      });
}

}  // namespace wedge
