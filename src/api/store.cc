#include "api/store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/baseline_deployment.h"
#include "core/deployment.h"

namespace wedge {

namespace api_internal {

struct StoreCore {
  StoreOptions options;
  /// Declared before `backend` deliberately: the backend's destructor
  /// joins worker threads whose completion wrappers release admission
  /// slots, so the gate must outlive it.
  AsyncGate gate;
  std::unique_ptr<StoreBackend> backend;

  /// Blocks until `done()` holds, bounded by the per-op `deadline` when
  /// one was given (> 0) and `options.op_timeout` otherwise — stepping
  /// simulation events under SimRuntime (where a drained event queue
  /// before completion means the operation can never finish), sleeping
  /// on the runtime's completion condition variable under
  /// ThreadedRuntime. `done` must read only state written through
  /// Runtime::RunOnCompletion, which is what orders it against the
  /// completing worker thread.
  Status PumpUntil(const std::function<bool()>& done, SimTime deadline = 0) {
    return backend->runtime().WaitUntil(
        deadline > 0 ? deadline : options.op_timeout, done);
  }
};

Status PumpCore(StoreCore& core, const std::function<bool()>& done,
                SimTime deadline) {
  return core.PumpUntil(done, deadline);
}

}  // namespace api_internal

using api_internal::AsyncCommitState;
using api_internal::AsyncGate;
using api_internal::AsyncOpState;
using api_internal::SettleCommit;
using api_internal::SettleOp;
using api_internal::StoreCore;

// ----------------------------------------------------------- CommitHandle

bool CommitHandle::phase1_done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->p1_settled;
}
bool CommitHandle::phase2_done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->p2_settled;
}

Result<Commit> CommitHandle::WaitPhase1(SimTime deadline) {
  auto* st = state_.get();
  WEDGE_RETURN_NOT_OK(
      core_->PumpUntil([st] { return st->phase1_done; }, deadline));
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!st->phase1_status.ok()) return st->phase1_status;
  return st->phase1;
}

Result<Commit> CommitHandle::WaitPhase2(SimTime deadline) {
  auto* st = state_.get();
  WEDGE_RETURN_NOT_OK(
      core_->PumpUntil([st] { return st->phase2_done; }, deadline));
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!st->phase2_status.ok()) return st->phase2_status;
  return st->phase2;
}

// ------------------------------------------------------------------ Store

namespace {

/// Rejects configurations that would otherwise crash (or wedge) deep in
/// deployment construction: every Open failure is an InvalidArgument
/// here, never an abort downstream.
Status ValidateOptions(const StoreOptions& options) {
  const DeploymentConfig& d = options.deploy;
  if (d.num_clients == 0) {
    return Status::InvalidArgument("StoreOptions: need at least one client");
  }
  if (d.num_edges == 0) {
    return Status::InvalidArgument("StoreOptions: need at least one edge");
  }
  const ShardingConfig& sh = d.sharding;
  if (sh.slots() > d.num_edges) {
    return Status::InvalidArgument(
        "StoreOptions: " + std::to_string(sh.slots()) +
        " shard slots need at least as many edges, got " +
        std::to_string(d.num_edges));
  }
  if (sh.num_shards >= 2 && sh.scheme == ShardScheme::kRange &&
      sh.range_span < sh.num_shards) {
    return Status::InvalidArgument(
        "StoreOptions: range sharding needs range_span >= num_shards "
        "(every shard must own at least one key)");
  }
  if (sh.num_shards >= 2 && sh.scheme == ShardScheme::kHash &&
      sh.slots() > sh.num_shards) {
    return Status::InvalidArgument(
        "StoreOptions: spare shard capacity is unusable under hash "
        "sharding (interleaved ownership cannot be split); use "
        "ShardScheme::kRange for resharding");
  }
  // The drain floor binds every migration-capable config: a split needs
  // a spare slot, but a merge runs between two live neighbours with no
  // spare at all — either way writes in flight at fence time must reach
  // the source before the export snapshot.
  const bool can_migrate = sh.slots() >= 2 && sh.range_expressible();
  if (can_migrate &&
      options.resharding.drain_delay < 2 * d.edge.partial_flush_delay) {
    return Status::InvalidArgument(
        "StoreOptions: resharding drain_delay must comfortably exceed "
        "the edge partial_flush_delay (>= 2x), or writes in flight at "
        "fence time could miss the migration export");
  }
  if (options.retry.enabled && options.retry.max_attempts == 0) {
    return Status::InvalidArgument(
        "StoreOptions: facade retry must bound its attempts "
        "(WithRetry with max_attempts >= 1) — an unbounded retry "
        "against a dead deployment would never return");
  }
  if (d.runtime.socket.enabled && d.runtime.kind != RuntimeKind::kThreaded) {
    // SocketTransport is built by ThreadedRuntime; under the simulator
    // the config would be silently ignored.
    return Status::InvalidArgument(
        "StoreOptions: WithSocketTransport requires WithRuntime("
        "RuntimeKind::kThreaded) — the simulator has no real sockets");
  }
  if (options.balancer.enabled) {
    // The autonomous lifecycle actuates through SplitShard/MergeShards,
    // so it needs a routed store with range-expressible ownership: a
    // policy that could never act is a misconfiguration, not a no-op.
    if (!can_migrate) {
      return Status::InvalidArgument(
          "StoreOptions: WithAutoBalance needs a splittable sharded "
          "store (WithShards(n, ShardScheme::kRange, span), or a single "
          "seed shard with WithShardCapacity spare slots)");
    }
    if (options.balancer.tick_period <= 0) {
      return Status::InvalidArgument(
          "StoreOptions: balancer tick_period must be positive");
    }
    if (options.balancer.split_ticks == 0 ||
        options.balancer.merge_ticks == 0) {
      return Status::InvalidArgument(
          "StoreOptions: balancer split_ticks/merge_ticks must be >= 1 "
          "(a zero streak makes every shard a candidate on every tick)");
    }
    if (options.balancer.min_window_ops == 0) {
      return Status::InvalidArgument(
          "StoreOptions: balancer min_window_ops must be >= 1, or an "
          "idle store's zero-op windows read as uniformly cold and it "
          "merges itself on no signal");
    }
    if (options.balancer.split_fraction <= 0 ||
        options.balancer.split_fraction > 1 ||
        options.balancer.merge_fraction < 0 ||
        options.balancer.merge_fraction >= 1) {
      return Status::InvalidArgument(
          "StoreOptions: balancer watermarks are fractions of the "
          "window's ops — split_fraction must be in (0, 1] and "
          "merge_fraction in [0, 1), or the policy can never act");
    }
    if (options.balancer.split_fraction <= options.balancer.merge_fraction) {
      return Status::InvalidArgument(
          "StoreOptions: balancer split_fraction must exceed "
          "merge_fraction (the watermarks must not overlap, or every "
          "window would both split and merge the same shard)");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Store> Store::Open(StoreOptions options) {
  WEDGE_RETURN_NOT_OK(ValidateOptions(options));
  auto core = std::make_shared<StoreCore>();
  core->options = std::move(options);
  core->gate.set_limit(core->options.async_inflight_limit);
  core->backend = MakeBackend(core->options);
  if (core->backend == nullptr) {
    return Status::InvalidArgument("StoreOptions: unknown backend");
  }
  if (core->options.before_start) {
    core->options.before_start(*core->backend);
    // The hook's one legitimate call is done; don't keep its captured
    // environment (often stack references) reachable via options().
    core->options.before_start = nullptr;
  }
  core->backend->Start();
  return Store(std::move(core));
}

namespace {

/// Builds the shared state of a write handle and issues the write
/// through the admission gate with its two phase-settling callbacks —
/// or settles both phases up front when the client index is out of
/// range (InvalidArgument) or the gate is full (ResourceExhausted).
/// Phase settles go through SettleCommit, whose RunOnCompletion write
/// is what the façade's WaitPhaseN predicates synchronize on.
std::shared_ptr<AsyncCommitState> IssueWrite(
    StoreCore& core, size_t client, const AsyncOptions& opts,
    const std::function<void(StoreBackend::CommitCb, StoreBackend::CommitCb)>&
        issue) {
  auto state = std::make_shared<AsyncCommitState>();
  Runtime* rt = &core.backend->runtime();
  state->rt = rt;
  state->gate = &core.gate;
  if (client >= core.backend->client_count()) {
    const Status bad =
        Status::InvalidArgument("no client " + std::to_string(client));
    SettleCommit(state, /*phase2=*/true, bad, Commit{0, rt->Now()});
    return state;
  }
  if (!core.gate.TryAdmit()) {
    const Status full = Status::ResourceExhausted(
        "async in-flight limit reached (StoreOptions::async_inflight_limit)");
    SettleCommit(state, /*phase2=*/true, full, Commit{0, rt->Now()});
    return state;
  }
  AsyncGate* gate = &core.gate;
  issue(
      [state](const Status& s, BlockId bid, SimTime t) {
        SettleCommit(state, /*phase2=*/false, s, Commit{bid, t});
      },
      [state, gate](const Status& s, BlockId bid, SimTime t) {
        // Phase II is the backend's final word on this write: the
        // admission slot is released here and only here, even when a
        // deadline or cancel settled the handle earlier.
        gate->Release();
        SettleCommit(state, /*phase2=*/true, s, Commit{bid, t});
      });
  if (opts.deadline > 0) {
    rt->ControlExecutor()->After(opts.deadline, [state, gate] {
      if (SettleCommit(state, /*phase2=*/true,
                       Status::DeadlineExceeded("async op deadline"),
                       Commit{})) {
        gate->CountDeadlineExpired();
      }
    });
  }
  return state;
}

}  // namespace

CommitHandle Store::Put(Key key, Bytes value, size_t client) {
  return PutBatch({{key, std::move(value)}}, client);
}

CommitHandle Store::PutBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                             size_t client) {
  return CommitHandle(
      core_, IssueWrite(*core_, client, AsyncOptions{},
                        [&](StoreBackend::CommitCb p1, StoreBackend::CommitCb
                                                           p2) {
                          core_->backend->PutBatch(client, kvs, std::move(p1),
                                                   std::move(p2));
                        }));
}

CommitHandle Store::Append(std::vector<Bytes> payloads, size_t client) {
  return CommitHandle(
      core_, IssueWrite(*core_, client, AsyncOptions{},
                        [&](StoreBackend::CommitCb p1, StoreBackend::CommitCb
                                                           p2) {
                          core_->backend->Append(client, std::move(payloads),
                                                 std::move(p1), std::move(p2));
                        }));
}

AsyncCommit Store::AsyncPut(Key key, Bytes value, size_t client,
                            const AsyncOptions& opts) {
  return AsyncPutBatch({{key, std::move(value)}}, client, opts);
}

AsyncCommit Store::AsyncPutBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                                 size_t client, const AsyncOptions& opts) {
  return AsyncCommit(
      core_, IssueWrite(*core_, client, opts,
                        [&](StoreBackend::CommitCb p1, StoreBackend::CommitCb
                                                           p2) {
                          core_->backend->PutBatch(client, kvs, std::move(p1),
                                                   std::move(p2));
                        }));
}

AsyncCommit Store::AsyncAppend(std::vector<Bytes> payloads, size_t client,
                               const AsyncOptions& opts) {
  return AsyncCommit(
      core_, IssueWrite(*core_, client, opts,
                        [&](StoreBackend::CommitCb p1, StoreBackend::CommitCb
                                                           p2) {
                          core_->backend->Append(client, std::move(payloads),
                                                 std::move(p1), std::move(p2));
                        }));
}

namespace {

/// Builds the shared state of a single-completion async op and issues
/// it through the admission gate; shared by the four Async* reads. Bad
/// client indexes settle InvalidArgument and a full gate settles
/// ResourceExhausted, both without touching the backend.
template <typename T, typename IssueFn>
AsyncOp<T> IssueAsyncRead(const std::shared_ptr<StoreCore>& core,
                          size_t client, const AsyncOptions& opts,
                          IssueFn issue) {
  auto state = std::make_shared<AsyncOpState<T>>();
  Runtime* rt = &core->backend->runtime();
  state->rt = rt;
  state->gate = &core->gate;
  if (client >= core->backend->client_count()) {
    SettleOp<T>(state,
                Status::InvalidArgument("no client " + std::to_string(client)),
                T{});
    return AsyncOp<T>(core, state);
  }
  if (!core->gate.TryAdmit()) {
    SettleOp<T>(state,
                Status::ResourceExhausted(
                    "async in-flight limit reached "
                    "(StoreOptions::async_inflight_limit)"),
                T{});
    return AsyncOp<T>(core, state);
  }
  AsyncGate* gate = &core->gate;
  issue(client, [state, gate](const Status& s, T r, SimTime) {
    // The backend's single completion: release the admission slot
    // unconditionally (a deadline/cancel may have settled the handle
    // already — the slot tracks the backend work, not the observation).
    gate->Release();
    SettleOp<T>(state, s, std::move(r));
  });
  if (opts.deadline > 0) {
    rt->ControlExecutor()->After(opts.deadline, [state, gate] {
      if (SettleOp<T>(state, Status::DeadlineExceeded("async op deadline"),
                      T{})) {
        gate->CountDeadlineExpired();
      }
    });
  }
  return AsyncOp<T>(core, state);
}

/// The synchronous read façade as a thin wrapper over the async
/// surface: issue + Wait. With StoreOptions::retry enabled, transient
/// failures (Unavailable, DeadlineExceeded) are re-issued after an
/// exponential backoff that runs the deployment — background recovery
/// (healed partitions, edge certify retries) makes progress between
/// attempts. Security-class failures never retry: a detected lie must
/// surface, not be papered over by a second ask.
template <typename T, typename ReissueFn>
Result<T> SyncRead(StoreCore& core, SimTime deadline, ReissueFn reissue) {
  const RetryPolicy& retry = core.options.retry;
  SimTime backoff = retry.initial_backoff;
  for (uint32_t attempt = 1;; ++attempt) {
    AsyncOp<T> op = reissue();
    Result<T> r = op.Wait(deadline);
    if (r.ok()) return r;
    const Status& s = r.status();
    const bool transient = s.IsUnavailable() || s.IsDeadlineExceeded();
    if (!retry.enabled || !transient || attempt >= retry.max_attempts) {
      return r;
    }
    // A timed-out attempt's handle stays alive inside its own callback
    // capture; if the stale response lands later it settles a handle
    // nobody reads. The retry issues a fresh request.
    core.backend->runtime().RunFor(backoff);
    backoff = std::min<SimTime>(
        retry.max_backoff,
        static_cast<SimTime>(static_cast<double>(backoff) * retry.multiplier));
  }
}

}  // namespace

AsyncOp<GetResult> Store::AsyncGet(Key key, size_t client,
                                   const AsyncOptions& opts) {
  return IssueAsyncRead<GetResult>(
      core_, client, opts, [this, key](size_t c, StoreBackend::GetCb cb) {
        core_->backend->Get(c, key, std::move(cb));
      });
}

AsyncOp<MultiGetResult> Store::AsyncMultiGet(const std::vector<Key>& keys,
                                             size_t client,
                                             const AsyncOptions& opts) {
  return IssueAsyncRead<MultiGetResult>(
      core_, client, opts,
      [this, &keys](size_t c, StoreBackend::MultiGetCb cb) {
        core_->backend->MultiGet(c, keys, std::move(cb));
      });
}

AsyncOp<ScanResult> Store::AsyncScan(Key lo, Key hi, size_t client,
                                     const AsyncOptions& opts) {
  if (lo > hi) {
    // Normalized across backends: the edge systems reject an inverted
    // range in proof verification; cloud-only would silently return
    // nothing.
    auto state = std::make_shared<AsyncOpState<ScanResult>>();
    state->rt = &core_->backend->runtime();
    state->gate = &core_->gate;
    SettleOp<ScanResult>(
        state, Status::InvalidArgument("scan range is empty"), ScanResult{});
    return AsyncOp<ScanResult>(core_, state);
  }
  return IssueAsyncRead<ScanResult>(
      core_, client, opts, [this, lo, hi](size_t c, StoreBackend::ScanCb cb) {
        core_->backend->Scan(c, lo, hi, std::move(cb));
      });
}

AsyncOp<BlockRead> Store::AsyncReadBlock(BlockId bid, size_t client,
                                         const AsyncOptions& opts) {
  return IssueAsyncRead<BlockRead>(
      core_, client, opts, [this, bid](size_t c, StoreBackend::ReadBlockCb cb) {
        core_->backend->ReadBlock(c, bid, std::move(cb));
      });
}

AsyncStats Store::async_stats() const { return core_->gate.Snapshot(); }

Result<GetResult> Store::Get(Key key, size_t client, SimTime deadline) {
  return SyncRead<GetResult>(*core_, deadline, [&] {
    return AsyncGet(key, client);
  });
}

Result<MultiGetResult> Store::MultiGet(const std::vector<Key>& keys,
                                       size_t client, SimTime deadline) {
  return SyncRead<MultiGetResult>(*core_, deadline, [&] {
    return AsyncMultiGet(keys, client);
  });
}

Result<ScanResult> Store::Scan(Key lo, Key hi, size_t client,
                               SimTime deadline) {
  return SyncRead<ScanResult>(*core_, deadline, [&] {
    return AsyncScan(lo, hi, client);
  });
}

Result<BlockRead> Store::ReadBlock(BlockId bid, size_t client,
                                   SimTime deadline) {
  return SyncRead<BlockRead>(*core_, deadline, [&] {
    return AsyncReadBlock(bid, client);
  });
}

namespace {

/// Issues an asynchronous split via `issue` and pumps until its callback
/// delivers; shared by SplitShard and Rebalance.
template <typename IssueFn>
Result<SplitReport> SyncSplit(StoreCore& core, IssueFn issue) {
  struct Waiter {
    bool done = false;
    Status status;
    SplitReport report;
  };
  auto waiter = std::make_shared<Waiter>();
  Runtime* rt = &core.backend->runtime();
  issue([waiter, rt](const Status& s, const SplitReport& r, SimTime) {
    rt->RunOnCompletion([&] {
      waiter->status = s;
      waiter->report = r;
      waiter->done = true;
    });
  });
  WEDGE_RETURN_NOT_OK(core.PumpUntil([w = waiter.get()] { return w->done; }));
  if (!waiter->status.ok()) return waiter->status;
  return waiter->report;
}

}  // namespace

Result<SplitReport> Store::SplitShard(size_t shard) {
  return SyncSplit(*core_, [this, shard](StoreBackend::SplitCb cb) {
    core_->backend->SplitShard(shard, std::move(cb));
  });
}

Result<SplitReport> Store::MergeShards(size_t shard) {
  return SyncSplit(*core_, [this, shard](StoreBackend::SplitCb cb) {
    core_->backend->MergeShards(shard, std::move(cb));
  });
}

Result<SplitReport> Store::Rebalance() {
  return SyncSplit(*core_, [this](StoreBackend::SplitCb cb) {
    core_->backend->Rebalance(std::move(cb));
  });
}

OwnershipEpoch Store::ownership_epoch() const {
  const OwnershipTable* t = core_->backend->ownership();
  return t == nullptr ? 1 : t->epoch();
}
const OwnershipTable* Store::ownership() const {
  return core_->backend->ownership();
}
const RouterStats* Store::router_stats() const {
  return core_->backend->router_stats();
}
const ReshardingCoordinator* Store::resharding() const {
  return core_->backend->resharding();
}
const AutoBalancer* Store::balancer() const {
  return core_->backend->balancer();
}

StoreStats Store::stats() const {
  StoreStats s;
  const OwnershipTable* table = core_->backend->ownership();
  if (table != nullptr) {
    s.epoch = table->epoch();
    s.live_shards = table->LiveShards();
  }
  s.router = core_->backend->router_stats_snapshot();
  if (const ReshardingCoordinator* c = core_->backend->resharding()) {
    s.resharding = c->stats_snapshot();
  }
  if (const AutoBalancer* b = core_->backend->balancer()) {
    s.balancer = b->stats_snapshot();
  }
  Runtime& rt = core_->backend->runtime();
  s.transport = rt.transport().stats_snapshot();
  s.faults = rt.faults().stats();
  s.async = core_->gate.Snapshot();
  return s;
}

void Store::RunFor(SimTime duration) {
  core_->backend->runtime().RunFor(duration);
}
void Store::RunUntil(SimTime until) {
  core_->backend->runtime().RunUntil(until);
}
SimTime Store::now() { return core_->backend->runtime().Now(); }

BackendKind Store::kind() const { return core_->backend->kind(); }
size_t Store::client_count() const { return core_->backend->client_count(); }
size_t Store::shard_count() const { return core_->backend->shard_count(); }
const Partitioner& Store::partitioner() const {
  return core_->backend->partitioner();
}
Runtime& Store::runtime() { return core_->backend->runtime(); }
Simulation& Store::sim() { return core_->backend->sim(); }
SimNetwork& Store::net() { return core_->backend->net(); }
const StoreOptions& Store::options() const { return core_->options; }
StoreBackend& Store::backend() { return *core_->backend; }

namespace {

/// Unconditional (NDEBUG-proof): dereferencing a null deployment would
/// be silent undefined behavior in release builds.
template <typename T>
T& CheckedDeployment(T* d, const char* accessor, BackendKind actual) {
  if (d == nullptr) {
    std::fprintf(stderr, "Store::%s() requires a matching backend, got %s\n",
                 accessor, std::string(BackendKindToString(actual)).c_str());
    std::abort();
  }
  return *d;
}

}  // namespace

Deployment& Store::wedge() {
  return CheckedDeployment(core_->backend->wedge(), "wedge", kind());
}

EdgeBaselineDeployment& Store::edge_baseline() {
  return CheckedDeployment(core_->backend->edge_baseline(), "edge_baseline",
                           kind());
}

CloudOnlyDeployment& Store::cloud_only() {
  return CheckedDeployment(core_->backend->cloud_only(), "cloud_only",
                           kind());
}

}  // namespace wedge
