// ShardRouter: the key-partitioned routing layer between the wedge::Store
// façade and the per-edge clients.
//
// A sharded store (StoreOptions::WithShards) runs S independent
// partitions — one LSMerkle tree + log per edge — and backs every logical
// client with one physical client per shard, laid out as
//
//   physical(c, s) = c * S + s      (pinned to edge s)
//
// inside the wrapped deployment. The router owns the only map from keys
// to shards (core/partitioner.h) and applies it uniformly over all three
// backends — WedgeChain, edge-baseline and cloud-only accept the identical
// sharded call sequence, because routing happens behind the StoreBackend
// seam rather than in any deployment:
//
//  - Put/Get route each key to its owning shard; a batch spanning shards
//    commits on every involved shard before either phase reports.
//  - Append (no key) routes to the logical client's home shard c % S.
//  - ReadBlock uses router-scoped block ids: global = inner * S + shard.
//    Edges allocate ids independently (paper §III: unique per edge, not
//    across edges), so commit acks are translated on the way out and
//    decoded on the way back in.
//  - Scan fans out to every shard the range can touch, each sub-scan
//    proof-verified independently by that shard's client, and stitches
//    the verified results by key. Proof-boundary invariant: a pair enters
//    the stitched result only from the shard that owns its key, so a
//    shard can neither inject keys it does not own nor mask another
//    shard's violation — any failing sub-scan fails the whole scan, with
//    SecurityViolation taking precedence over benign errors.

#pragma once

#include <memory>

#include "api/backend.h"
#include "core/partitioner.h"

namespace wedge {

class ShardRouter : public StoreBackend {
 public:
  /// Wraps `inner`, which must have been built with
  /// logical_clients * partitioner.shards() physical clients pinned
  /// shard-aware (DeploymentConfig::sharding). Use MakeBackend rather
  /// than constructing directly.
  ShardRouter(std::unique_ptr<StoreBackend> inner, Partitioner partitioner,
              size_t logical_clients);

  BackendKind kind() const override { return inner_->kind(); }
  void Start() override { inner_->Start(); }
  Simulation& sim() override { return inner_->sim(); }
  SimNetwork& net() override { return inner_->net(); }
  size_t client_count() const override { return logical_clients_; }
  const Partitioner& partitioner() const override { return partitioner_; }

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override;
  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override;
  void Get(size_t client, Key key, GetCb cb) override;
  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override;
  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override;

  Deployment* wedge() override { return inner_->wedge(); }
  EdgeBaselineDeployment* edge_baseline() override {
    return inner_->edge_baseline();
  }
  CloudOnlyDeployment* cloud_only() override { return inner_->cloud_only(); }

  /// The physical client backing (logical `client`, `shard`).
  size_t PhysicalClient(size_t client, size_t shard) const {
    return client * partitioner_.shards() + shard;
  }

  // Router-scoped block ids. Every block id that crosses the StoreBackend
  // seam of a sharded store is in global form.
  static BlockId GlobalBlockId(BlockId inner, size_t shard, size_t shards) {
    return inner * shards + shard;
  }
  static size_t ShardOfBlockId(BlockId global, size_t shards) {
    return static_cast<size_t>(global % shards);
  }
  static BlockId InnerBlockId(BlockId global, size_t shards) {
    return global / shards;
  }

 private:
  /// Wraps a commit callback so acked block ids come out in global form.
  CommitCb TranslateBids(CommitCb cb, size_t shard) const;

  std::unique_ptr<StoreBackend> inner_;
  Partitioner partitioner_;
  size_t logical_clients_;
};

}  // namespace wedge
