// ShardRouter: the key-partitioned, epoch-aware routing layer between
// the wedge::Store façade and the per-edge clients.
//
// A sharded store (StoreOptions::WithShards / WithShardCapacity) runs up
// to `capacity` independent partitions — one LSMerkle tree + log per
// edge — and backs every logical client with one physical client per
// shard slot, laid out as
//
//   physical(c, s) = c * capacity + s      (pinned to edge s)
//
// inside the wrapped deployment. The router owns the only map from keys
// to shards — an epoch-versioned OwnershipTable seeded from
// core/partitioner.h — and applies it uniformly over all three backends:
// WedgeChain, edge-baseline and cloud-only accept the identical sharded
// call sequence, because routing happens behind the StoreBackend seam
// rather than in any deployment.
//
//  - Put/Get/MultiGet route each key to its owning shard under the
//    current ownership epoch; a batch spanning shards commits on every
//    involved shard before either phase reports.
//  - Epoch-aware routing: every logical client carries the ownership
//    epoch it last observed. A request under a stale epoch is
//    deterministically redirected to the current owner and the client's
//    epoch refreshed — never an error (RouterStats::stale_redirects).
//  - Failure awareness: a Get routed to a crashed or partitioned edge
//    degrades to a cloud-served, certificate-verified read
//    (RouterStats::failovers) instead of timing out; writes and scans
//    to an unreachable shard fail fast with Unavailable
//    (RouterStats::unreachable_rejects) — they cannot be cloud-served.
//  - Append (no key) routes to the logical client's home slot
//    c % capacity.
//  - ReadBlock uses router-scoped block ids: global = inner * capacity +
//    shard. The modulus is the slot *capacity*, fixed for the store's
//    life, so block ids handed out under epoch N remain decodable under
//    every later epoch.
//  - Scan fans out one verified sub-scan per owned slice intersecting
//    the range and stitches the results by key. Proof-boundary
//    invariant: a pair enters the stitched result only from the shard
//    owning its key under the epoch the scan was issued at, so a shard
//    can neither inject keys it does not own nor mask another shard's
//    violation — any failing sub-scan fails the whole scan, with
//    SecurityViolation taking precedence over benign errors.
//  - SplitShard/MergeShards/Rebalance drive verified live migration
//    (the router is the ReshardingCoordinator's ShardMigrationHost):
//    writes into the moving range are parked while the handoff is in
//    flight — the parking path still refreshes the client's epoch, and
//    the parked keys are counted into the heat window when they flush —
//    and per-client verifier caches are invalidated for the moved range
//    (toward the destination on a split, toward the survivor on a
//    merge) and re-sized to the new ownership.
//  - With StoreOptions::WithAutoBalance the router runs an AutoBalancer
//    tick over its own heat window (RouterStats::ops_per_shard),
//    splitting hot shards and merging cooled ones without operator
//    calls; a merged slot returns to the idle pool, so a shifting
//    hotspot cycles split → merge → split inside the fixed capacity.

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "api/backend.h"
#include "core/balancer.h"
#include "core/partitioner.h"
#include "core/resharding.h"

namespace wedge {

/// Live per-shard load signals (read-latency histograms, byte counters)
/// behind their own lock. Shared into completion callbacks by
/// shared_ptr value — a read completing while the router tears down
/// records into still-live state instead of a dangling `this`.
struct ShardLoadStats {
  std::mutex mu;
  ShardSignals signals;
};

/// Counts the writes in flight against one shard between routing and
/// their Phase-I commit (or fast failure), so a migration fence can wait
/// for *explicit* quiescence instead of guessing with a drain timer.
/// FenceRange swaps a fresh gauge into the routing table and Arms the
/// old one: post-fence writes count on the new gauge, and the armed
/// callback fires exactly when the last pre-fence write resolves — on
/// whatever thread that completion lands (the coordinator re-posts).
/// Writes hold the gauge by shared_ptr, so a completion landing after
/// the fence (or after router teardown) still balances the right count.
class WriteGauge {
 public:
  /// One write routed to the shard. Called under the router's routing
  /// lock, in the same critical section that picked the shard — a
  /// concurrent fence either sees the increment or swaps first (and the
  /// write counts on the replacement gauge it routed under).
  void Add() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

  /// The write reached Phase I (or failed fast). Fires the armed
  /// callback when this was the last one.
  void Done() {
    std::function<void()> fire;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--count_ == 0 && armed_) {
        fire = std::move(cb_);
        armed_ = false;
      }
    }
    if (fire) fire();
  }

  /// Registers the quiescence callback; invoked immediately when nothing
  /// is in flight. At most one Arm per gauge (a gauge is fenced once).
  void Arm(std::function<void()> cb) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (count_ > 0) {
        cb_ = std::move(cb);
        armed_ = true;
        return;
      }
    }
    cb();
  }

 private:
  std::mutex mu_;
  int64_t count_ = 0;
  bool armed_ = false;
  std::function<void()> cb_;
};

class ShardRouter : public StoreBackend, public ShardMigrationHost {
 public:
  /// Wraps `inner`, which must have been built with
  /// logical_clients * table->capacity() physical clients pinned
  /// shard-aware (DeploymentConfig::sharding). Use MakeBackend rather
  /// than constructing directly.
  ShardRouter(std::unique_ptr<StoreBackend> inner,
              std::shared_ptr<OwnershipTable> table, size_t logical_clients,
              VerifierCache::Limits cache_unit, ReshardingConfig resharding,
              BalancerPolicy balancer = {});

  BackendKind kind() const override { return inner_->kind(); }
  void Start() override {
    inner_->Start();
    if (balancer_) balancer_->Start();
  }
  Runtime& runtime() override { return inner_->runtime(); }
  Simulation& sim() override { return inner_->sim(); }
  SimNetwork& net() override { return inner_->net(); }
  size_t client_count() const override { return logical_clients_; }
  const Partitioner& partitioner() const override { return table_->seed(); }
  size_t shard_count() const override { return table_->capacity(); }
  const OwnershipTable* ownership() const override { return table_.get(); }
  const ReshardingCoordinator* resharding() const override {
    return coordinator_.get();
  }
  /// Raw pointer into live counters — sim-only reads; concurrent callers
  /// use router_stats_snapshot().
  const RouterStats* router_stats() const override { return &stats_; }
  RouterStats router_stats_snapshot() const override;
  const AutoBalancer* balancer() const override { return balancer_.get(); }

  void PutBatch(size_t client, const std::vector<std::pair<Key, Bytes>>& kvs,
                CommitCb on_phase1, CommitCb on_phase2) override;
  void Append(size_t client, std::vector<Bytes> payloads, CommitCb on_phase1,
              CommitCb on_phase2) override;
  void Get(size_t client, Key key, GetCb cb) override;
  // MultiGet is inherited: the default gather issues the batch through
  // the virtual Get, which already routes each key (scatter per shard).
  void Scan(size_t client, Key lo, Key hi, ScanCb cb) override;
  void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) override;

  void SplitShard(size_t shard, SplitCb cb) override;
  void MergeShards(size_t shard, SplitCb cb) override;
  void Rebalance(SplitCb cb) override;

  Deployment* wedge() override { return inner_->wedge(); }
  EdgeBaselineDeployment* edge_baseline() override {
    return inner_->edge_baseline();
  }
  CloudOnlyDeployment* cloud_only() override { return inner_->cloud_only(); }

  /// The physical client backing (logical `client`, `shard`).
  size_t PhysicalClient(size_t client, size_t shard) const {
    return client * table_->capacity() + shard;
  }

  /// The ownership epoch logical `client` last observed (requests carry
  /// it; stale views are refreshed by the redirect path).
  OwnershipEpoch ClientEpoch(size_t client) const {
    std::lock_guard<std::mutex> lock(mu_);
    return client_epochs_.at(client);
  }

  // Router-scoped block ids. Every block id that crosses the StoreBackend
  // seam of a sharded store is in global form; `slots` is the shard slot
  // capacity, which never changes — ids are epoch-stable.
  static BlockId GlobalBlockId(BlockId inner, size_t shard, size_t slots) {
    return inner * slots + shard;
  }
  static size_t ShardOfBlockId(BlockId global, size_t slots) {
    return static_cast<size_t>(global % slots);
  }
  static BlockId InnerBlockId(BlockId global, size_t slots) {
    return global / slots;
  }

  // ---- ShardMigrationHost (driven by the ReshardingCoordinator) ------

  void ExportRange(size_t shard, Key lo, Key hi, ExportCb cb) override;
  void ImportPairs(size_t shard, std::vector<KvPair> pairs, PhaseCb applied,
                   PhaseCb certified) override;
  void FenceRange(size_t source, Key lo, Key hi,
                  std::function<void()> quiesced) override;
  void LiftFence() override;
  void OnEpochInstalled(const MigrationReport& report) override;

 private:
  /// Routes `key` for logical `client` under the client's last-known
  /// epoch, redirecting (and refreshing the view) when it is stale.
  /// Callers hold mu_ (routing state and counters live behind it).
  size_t RouteKeyLocked(size_t client, Key key);
  /// Locking convenience for single-key paths (Get).
  size_t RouteKey(size_t client, Key key);
  /// Refreshes a client's epoch view without a key (scans, appends).
  /// Callers hold mu_.
  void RefreshEpochLocked(size_t client);

  /// Sizes each physical client's verifier cache by the key-span its
  /// shard owns under the current epoch (see
  /// ClientConfig::verify_cache_limits).
  void ResizeVerifierCaches();

  /// Rebalance's body (heat-driven victim selection + split), already
  /// posted onto the runtime's control executor.
  void RebalanceOnControl(SplitCb cb);

  std::unique_ptr<StoreBackend> inner_;
  std::shared_ptr<OwnershipTable> table_;
  size_t logical_clients_;
  VerifierCache::Limits cache_unit_;
  std::unique_ptr<ReshardingCoordinator> coordinator_;
  std::unique_ptr<AutoBalancer> balancer_;

  /// Guards the routing state below (client epochs, fence, parked
  /// writes, counters): under ThreadedRuntime every driver thread routes
  /// concurrently. Fine-grained — never held across an inner_ call, so
  /// no lock ordering exists against executor or completion locks.
  mutable std::mutex mu_;

  /// Ownership epoch each logical client last observed.
  std::vector<OwnershipEpoch> client_epochs_;

  /// Migration fence: while active, writes whose keys fall in
  /// [fence_lo_, fence_hi_] are parked and flushed on LiftFence.
  bool fence_active_ = false;
  Key fence_lo_ = 0;
  Key fence_hi_ = 0;
  std::vector<std::function<void()>> parked_;

  /// Per-shard in-flight write gauges (indexed by slot). Swapped at
  /// fence time; writes capture their gauge at routing, under mu_.
  std::vector<std::shared_ptr<WriteGauge>> write_gauges_;

  RouterStats stats_;

  /// Richer per-shard load (RouterStats::load in snapshots; fed to the
  /// AutoBalancer via Hooks::signals). Cumulative since Open — epoch
  /// installs reset ops_per_shard but not latency/byte history.
  std::shared_ptr<ShardLoadStats> load_;
};

}  // namespace wedge
