// wedge::Store — the public face of WedgeChain.
//
// One API over the paper's three systems: open a Store against the
// WedgeChain, edge-baseline, or cloud-only backend (StoreOptions::backend)
// and run the identical call sequence on each. Reads return Result<T>
// synchronously; writes return a CommitHandle whose WaitPhase1()/
// WaitPhase2() pump the simulator to the corresponding commit point —
// the paper's lazy-trust contract (§IV) as first-class API objects:
//
//   auto store = *Store::Open(StoreOptions().WithOpsPerBlock(4));
//   CommitHandle h = store.Put(42, value);
//   Commit p1 = *h.WaitPhase1();   // edge-latency, temporary proof
//   Commit p2 = *h.WaitPhase2();   // cloud-certified, p2.at >= p1.at
//   GetResult got = *store.Get(42);
//
// A detected lie surfaces as a Status (SecurityViolation /
// MaliciousBehavior) from the wait or read that observed it, never as
// silently wrong data.

#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "api/async.h"
#include "api/backend.h"
#include "api/options.h"
#include "common/result.h"

namespace wedge {

namespace api_internal {
struct StoreCore;
}  // namespace api_internal

/// Tracks one write through its two commit points. Handles share state
/// with the issuing Store and stay valid after it is moved. A
/// CommitHandle is the synchronous view over the same state an
/// AsyncCommit wraps — `Put(...)` and `AsyncPut(...).WaitPhaseN()` are
/// the same machinery.
class CommitHandle {
 public:
  /// Pumps the simulator until Phase I commits (temporary, edge-local
  /// for WedgeChain). Returns the commit, or the failure that ended the
  /// phase (DeadlineExceeded if the time budget elapsed first).
  /// `deadline` overrides StoreOptions::op_timeout for this wait;
  /// 0 keeps the store-wide budget.
  Result<Commit> WaitPhase1(SimTime deadline = 0);

  /// Pumps the simulator until Phase II commits (cloud-certified). For
  /// the baselines this is the same commit point as Phase I. A lying
  /// edge surfaces here as SecurityViolation / MaliciousBehavior.
  /// `deadline` overrides StoreOptions::op_timeout; 0 keeps it.
  Result<Commit> WaitPhase2(SimTime deadline = 0);

  bool phase1_done() const;
  bool phase2_done() const;

  /// The asynchronous view of the same write (shared state): register
  /// OnPhase1/OnPhase2 callbacks or Cancel without blocking.
  AsyncCommit async() const { return AsyncCommit(core_, state_); }

 private:
  friend class Store;
  CommitHandle(std::shared_ptr<api_internal::StoreCore> core,
               std::shared_ptr<api_internal::AsyncCommitState> state)
      : core_(std::move(core)), state_(std::move(state)) {}

  std::shared_ptr<api_internal::StoreCore> core_;
  std::shared_ptr<api_internal::AsyncCommitState> state_;
};

class Store {
 public:
  /// Builds, wires and starts the selected deployment.
  static Result<Store> Open(StoreOptions options);

  Store(Store&&) = default;
  Store& operator=(Store&&) = default;

  // ------------------------------------------------------------- writes

  /// Puts one key-value pair as client `client`.
  CommitHandle Put(Key key, Bytes value, size_t client = 0);

  /// Applies a batch of key-value puts through the LSMerkle path.
  CommitHandle PutBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                        size_t client = 0);

  /// Appends raw log entries. All three backends support log workloads:
  /// the baselines certify synchronously, so both phases commit together.
  CommitHandle Append(std::vector<Bytes> payloads, size_t client = 0);

  // ------------------------------------------------------ async surface
  //
  // Non-blocking issue: the returned handle's completions fire on the
  // runtime's executors (no pump-to-completion). Per-op deadlines and
  // Cancel settle the handle early; StoreOptions::async_inflight_limit
  // bounds admitted ops so a slow shard backpressures the issuer with
  // ResourceExhausted instead of ballooning memory. The sync methods
  // above are thin wrappers over these (issue + Wait).

  AsyncCommit AsyncPut(Key key, Bytes value, size_t client = 0,
                       const AsyncOptions& opts = {});
  AsyncCommit AsyncPutBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                            size_t client = 0, const AsyncOptions& opts = {});
  AsyncCommit AsyncAppend(std::vector<Bytes> payloads, size_t client = 0,
                          const AsyncOptions& opts = {});
  AsyncOp<GetResult> AsyncGet(Key key, size_t client = 0,
                              const AsyncOptions& opts = {});
  AsyncOp<MultiGetResult> AsyncMultiGet(const std::vector<Key>& keys,
                                        size_t client = 0,
                                        const AsyncOptions& opts = {});
  AsyncOp<ScanResult> AsyncScan(Key lo, Key hi, size_t client = 0,
                                const AsyncOptions& opts = {});
  AsyncOp<BlockRead> AsyncReadBlock(BlockId bid, size_t client = 0,
                                    const AsyncOptions& opts = {});

  /// Admission/lifecycle counters of the async surface (also included
  /// in stats().async).
  AsyncStats async_stats() const;

  // -------------------------------------------------------------- reads

  /// Gets `key`, pumping the simulator until the (verified) response
  /// arrives. Proof failures surface as SecurityViolation. `deadline`
  /// overrides StoreOptions::op_timeout for this call (0 keeps it);
  /// with StoreOptions::WithRetry, Unavailable / DeadlineExceeded
  /// outcomes are retried with bounded exponential backoff — the same
  /// per-op deadline applies to each attempt.
  Result<GetResult> Get(Key key, size_t client = 0, SimTime deadline = 0);

  /// Batched point reads, scatter-gathered per owning shard on a sharded
  /// store (all sub-reads in flight concurrently, so the batch pays one
  /// round trip rather than one per key). Results are positionally
  /// aligned with `keys`; any failing key fails the batch, with
  /// security-class failures taking precedence.
  Result<MultiGetResult> MultiGet(const std::vector<Key>& keys,
                                  size_t client = 0, SimTime deadline = 0);

  /// Scans [lo, hi] with completeness verification on the edge backends;
  /// a truncated scan fails as SecurityViolation, never as silently
  /// missing keys.
  Result<ScanResult> Scan(Key lo, Key hi, size_t client = 0,
                          SimTime deadline = 0);

  /// Reads log block `bid`: proof-verified on the edge backends, trusted
  /// on cloud-only.
  Result<BlockRead> ReadBlock(BlockId bid, size_t client = 0,
                              SimTime deadline = 0);

  // --------------------------------------------------------- resharding

  /// Splits `shard`'s key range at its midpoint via verified live
  /// migration (core/resharding.h): the moving range is exported as a
  /// completeness-verified scan (a lying source fails the split as
  /// SecurityViolation), imported at the first idle shard slot, and the
  /// new ownership epoch goes live at the destination's Phase I commit —
  /// the cloud certifies the handoff lazily. Pumps the simulator until
  /// the epoch is live (or the split fails; ownership is then
  /// unchanged). Needs spare capacity: open with WithShardCapacity.
  Result<SplitReport> SplitShard(size_t shard);

  /// The inverse migration: folds `shard`'s slice into its adjacent
  /// surviving neighbour through the same verified live-migration
  /// machinery (fence → drain → completeness-verified export → import
  /// at the survivor's Phase I → lazy handoff certificate). When the
  /// merged slice was the shard's last, the freed slot returns to the
  /// idle pool — a split→merge cycle never exhausts WithShardCapacity.
  Result<SplitReport> MergeShards(size_t shard);

  /// Splits the busiest live shard (by keyed operations routed since the
  /// last epoch change) — the one-step heat-driven rebalance. For the
  /// continuous, autonomous version see StoreOptions::WithAutoBalance.
  Result<SplitReport> Rebalance();

  /// Current ownership epoch: 1 until a migration installs a newer map.
  OwnershipEpoch ownership_epoch() const;
  /// The versioned ownership table (null on an unrouted store).
  const OwnershipTable* ownership() const;
  /// Routing-layer counters (null on an unrouted store).
  const RouterStats* router_stats() const;
  /// Migration counters and the applied-migration reports (null when
  /// unrouted).
  const ReshardingCoordinator* resharding() const;
  /// The autonomous lifecycle policy (null unless opened with
  /// WithAutoBalance).
  const AutoBalancer* balancer() const;
  /// One-call snapshot of epoch, live shards, router, migration and
  /// balancer counters (zeroed/defaulted on an unrouted store), plus
  /// the runtime's transport message counters and injected-fault stats.
  StoreStats stats() const;

  // -------------------------------------------------- runtime & access

  /// Runs the deployment for `duration` — virtual time under the default
  /// SimRuntime (background work such as certification, merges, and
  /// gossip happens during these windows), wall time (a real sleep,
  /// workers running throughout) under ThreadedRuntime.
  void RunFor(SimTime duration);
  void RunUntil(SimTime until);
  SimTime now();

  BackendKind kind() const;
  size_t client_count() const;
  /// Shards this store routes over (1 when opened unsharded). A sharded
  /// store partitions keys across edges per `partitioner()`; Scan fans
  /// out and stitches per-shard verified results transparently.
  size_t shard_count() const;
  const Partitioner& partitioner() const;
  /// The runtime this store executes on (see StoreOptions::WithRuntime).
  Runtime& runtime();
  /// Sim-only; abort under ThreadedRuntime — use runtime() for
  /// runtime-neutral code.
  Simulation& sim();
  SimNetwork& net();
  const StoreOptions& options() const;

  /// The deployment-neutral async interface (bench harness; advanced
  /// callers that must not block the closed loop).
  StoreBackend& backend();

  /// Concrete deployments for instrumentation — stats, misbehaviour
  /// injection, trust-authority queries. Aborts (in every build type)
  /// if `kind()` differs.
  Deployment& wedge();
  EdgeBaselineDeployment& edge_baseline();
  CloudOnlyDeployment& cloud_only();

 private:
  explicit Store(std::shared_ptr<api_internal::StoreCore> core)
      : core_(std::move(core)) {}

  std::shared_ptr<api_internal::StoreCore> core_;
};

}  // namespace wedge
