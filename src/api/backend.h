// StoreBackend: the deployment-neutral seam under wedge::Store.
//
// Each of the paper's three systems adapts its client API onto this
// asynchronous interface; the Store turns it into synchronous Result<T>
// calls and CommitHandles by waiting on the deployment's runtime —
// stepping the simulator under SimRuntime, blocking on a condition
// variable under ThreadedRuntime. The bench harness drives the
// asynchronous form directly (closed-loop clients must not block each
// other).
//
// Commit contract: `on_phase1` fires at the commit the paper calls
// Phase I (temporary, edge-local for WedgeChain); `on_phase2` at the
// certified commit. The baselines certify synchronously, so both fire
// together at their single commit point — which is exactly the paper's
// framing: the baselines collapse the two phases into one synchronous
// round trip.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "api/options.h"
#include "core/balancer.h"
#include "core/partitioner.h"
#include "core/resharding.h"
#include "log/block.h"
#include "lsmerkle/kv.h"
#include "lsmerkle/verifier_cache.h"
#include "runtime/runtime.h"

namespace wedge {

class Deployment;
class EdgeBaselineDeployment;
class CloudOnlyDeployment;
class ReshardingCoordinator;
class AutoBalancer;

/// Counters of the sharded routing layer (api/shard_router.h), exposed
/// through StoreBackend::router_stats() / Store::router_stats().
struct RouterStats {
  /// Operations whose stale-epoch route differed from the current owner
  /// and were redirected (the deterministic retry, never an error).
  uint64_t stale_redirects = 0;
  /// Logical-client epoch views refreshed to the current epoch.
  uint64_t epoch_refreshes = 0;
  /// Write sub-batches parked by a migration fence and flushed at epoch
  /// install (or on an aborted split, back to the unchanged owner).
  uint64_t writes_parked = 0;
  /// Reads served from the cloud's backup because the owning edge was
  /// crashed or partitioned away (failure-aware degrade: slower, still
  /// verified against the cloud's certificate).
  uint64_t failovers = 0;
  /// Writes and scans refused with Unavailable because the owning edge
  /// was unreachable (they cannot be cloud-served; failing fast beats
  /// hanging until the op deadline).
  uint64_t unreachable_rejects = 0;
  /// Keyed operations routed per shard slot since the last epoch change
  /// — the heat signal Rebalance (and the AutoBalancer's watermark
  /// policy) picks its victims by. Writes parked by a migration fence
  /// count here when they flush, attributed to the owner they commit
  /// on.
  std::vector<uint64_t> ops_per_shard;
  /// Richer per-shard load: read-latency histograms and byte counters,
  /// cumulative since Open (NOT reset on epoch installs, unlike
  /// ops_per_shard). Fed to the AutoBalancer via Hooks::signals so
  /// future watermarks can act on p99/bytes; empty on unrouted stores.
  ShardSignals load;
};

/// One-call observability snapshot of a store's sharding machinery
/// (Store::stats()): current ownership epoch plus the routing,
/// migration, and autonomous-balancing counters. All fields are
/// value-copies taken at the call; unrouted stores report epoch 1 and
/// zeroed counters.
struct StoreStats {
  OwnershipEpoch epoch = 1;
  size_t live_shards = 1;
  RouterStats router;
  ReshardingCoordinator::Stats resharding;
  BalancerStats balancer;
  /// Transport-level message counters of the underlying runtime (same
  /// shape on both runtimes; `dropped` includes fault-plane drops).
  TransportStats transport;
  /// Injected-fault counters (Runtime::faults().stats()).
  FaultStats faults;
  /// Async-surface admission and lifecycle counters (always populated;
  /// zeros when nothing used the async surface).
  AsyncStats async;
};

/// One committed write phase: the block that carries the write and the
/// virtual time the phase completed.
struct Commit {
  BlockId block = 0;
  SimTime at = 0;
};

/// Outcome of a point read through the façade.
struct GetResult {
  bool found = false;
  Bytes value;
  uint64_t version = 0;
  /// True when every component of the proof was cloud-certified
  /// (Phase II read); baselines always report true.
  bool phase2 = false;
  /// True when the result was proof-verified at the client; false for
  /// the cloud-only backend, which trusts the server outright.
  bool verified = false;
  SimTime at = 0;
};

/// Outcome of a range scan: newest version per key in [lo, hi].
struct ScanResult {
  std::vector<KvPair> pairs;
  bool phase2 = false;
  bool verified = false;
  SimTime at = 0;
};

/// Outcome of a scatter-gather MultiGet: one GetResult per requested
/// key, positionally aligned with the key list.
struct MultiGetResult {
  std::vector<GetResult> results;
  SimTime at = 0;
};

/// Outcome of a log-block read.
struct BlockRead {
  Block block;
  bool phase2 = false;
  SimTime at = 0;
};

/// Trust-severity status merge for fan-out joins: the first error wins,
/// except that a security-class status (a detected lie) always displaces
/// a benign one — a slow or unavailable shard must never mask a
/// tampering shard.
void MergeStatusBySeverity(Status* into, const Status& s);

class StoreBackend {
 public:
  using CommitCb = std::function<void(const Status&, BlockId, SimTime)>;
  using GetCb = std::function<void(const Status&, GetResult, SimTime)>;
  using ScanCb = std::function<void(const Status&, ScanResult, SimTime)>;
  using MultiGetCb =
      std::function<void(const Status&, MultiGetResult, SimTime)>;
  using ReadBlockCb = std::function<void(const Status&, BlockRead, SimTime)>;
  using SplitCb =
      std::function<void(const Status&, const SplitReport&, SimTime)>;

  virtual ~StoreBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Attaches every node to the network and starts timers/gossip.
  virtual void Start() = 0;

  /// The runtime this backend's deployment executes on — the seam every
  /// synchronous wait and clock read goes through, valid under both
  /// SimRuntime and ThreadedRuntime.
  virtual Runtime& runtime() = 0;

  /// Sim-only accessors (deterministic tests, CostModel experiments);
  /// abort under ThreadedRuntime. Runtime-neutral callers use runtime().
  virtual Simulation& sim() = 0;
  virtual SimNetwork& net() = 0;
  virtual size_t client_count() const = 0;

  /// Key partitioning this backend routes with. The default (unsharded)
  /// is a single shard owning every key; the ShardRouter decorator
  /// returns the real partition function, which callers (bench harness,
  /// workload generators) must share to attribute keys to edges.
  virtual const Partitioner& partitioner() const {
    static const Partitioner kSingle;
    return kSingle;
  }
  virtual size_t shard_count() const { return partitioner().shards(); }

  /// Applies a batch of key-value puts as client `client`.
  virtual void PutBatch(size_t client,
                        const std::vector<std::pair<Key, Bytes>>& kvs,
                        CommitCb on_phase1, CommitCb on_phase2) = 0;

  /// Appends raw log entries. Supported by all three systems, so log
  /// workloads run apples-to-apples: WedgeChain commits in two phases,
  /// the baselines certify synchronously (both phases fire together).
  virtual void Append(size_t client, std::vector<Bytes> payloads,
                      CommitCb on_phase1, CommitCb on_phase2) = 0;

  virtual void Get(size_t client, Key key, GetCb cb) = 0;

  // ---- failure awareness ----------------------------------------------

  /// True when `client`'s home edge is reachable from it under the
  /// runtime's fault plane (neither crashed nor partitioned away). The
  /// routing layer keys its read failover on this; backends without a
  /// notion of per-client edges report always-reachable.
  virtual bool EdgeReachable(size_t client) {
    (void)client;
    return true;
  }

  /// Degraded read: serves `key` from the cloud's backup of `client`'s
  /// edge instead of the edge itself — slower (wide-area round trip) but
  /// still verified against the cloud's certificate on backends that
  /// support it (WedgeChain with CloudConfig::backup_blocks). A miss is
  /// NOT proof of absence: the backup may lag the edge. The default
  /// falls back to the normal read path.
  virtual void CloudGet(size_t client, Key key, GetCb cb) {
    Get(client, key, std::move(cb));
  }

  /// Batched point reads: all keys issued concurrently (the sharded
  /// router scatter-gathers them per owning shard), results positionally
  /// aligned with `keys`. Any failing key fails the whole batch, with
  /// security-class failures taking precedence.
  virtual void MultiGet(size_t client, const std::vector<Key>& keys,
                        MultiGetCb cb);

  virtual void Scan(size_t client, Key lo, Key hi, ScanCb cb) = 0;

  /// Reads log block `bid`: proof-verified on the edge systems, trusted
  /// on cloud-only.
  virtual void ReadBlock(size_t client, BlockId bid, ReadBlockCb cb) = 0;

  // ---- resharding ----------------------------------------------------
  // Implemented by the ShardRouter decorator; the base backend has a
  // single static shard and refuses.

  /// Splits `shard`'s key range via verified live migration (see
  /// core/resharding.h). FailedPrecondition on an unrouted store.
  virtual void SplitShard(size_t shard, SplitCb cb);

  /// The inverse migration: folds `shard`'s slice into its adjacent
  /// neighbour and returns the freed slot to the idle pool.
  /// FailedPrecondition on an unrouted store.
  virtual void MergeShards(size_t shard, SplitCb cb);

  /// Splits the busiest live shard (by routed operations since the last
  /// epoch change) into the first idle slot.
  virtual void Rebalance(SplitCb cb);

  /// The versioned ownership map a routed store consults; null on an
  /// unrouted store (ownership is the static single-shard function).
  virtual const OwnershipTable* ownership() const { return nullptr; }
  virtual const ReshardingCoordinator* resharding() const { return nullptr; }
  virtual const RouterStats* router_stats() const { return nullptr; }
  /// Value-copy of the routing counters, safe while worker threads are
  /// routing concurrently (the ShardRouter override takes its stats
  /// lock); zeroed on an unrouted store. Prefer this over the
  /// router_stats() pointer anywhere a ThreadedRuntime may be live.
  virtual RouterStats router_stats_snapshot() const {
    const RouterStats* r = router_stats();
    return r == nullptr ? RouterStats{} : *r;
  }
  /// The autonomous lifecycle policy; null unless the store was opened
  /// with StoreOptions::WithAutoBalance.
  virtual const AutoBalancer* balancer() const { return nullptr; }

  // ---- verifier-cache management ------------------------------------
  // Per-physical-client hooks the routing layer uses to keep cache
  // budgets tracking shard ownership. No-ops on backends without
  // client-side verification (cloud-only).

  virtual void ResizeVerifierCache(size_t client,
                                   const VerifierCache::Limits& limits) {
    (void)client;
    (void)limits;
  }
  virtual void InvalidateVerifierRange(size_t client, Key lo, Key hi) {
    (void)client;
    (void)lo;
    (void)hi;
  }

  /// The concrete deployment, for instrumentation (stats, misbehaviour
  /// injection, trust-authority queries). Null unless `kind()` matches.
  virtual Deployment* wedge() { return nullptr; }
  virtual EdgeBaselineDeployment* edge_baseline() { return nullptr; }
  virtual CloudOnlyDeployment* cloud_only() { return nullptr; }
};

/// Builds (but does not Start) the backend selected by `options.backend`.
std::unique_ptr<StoreBackend> MakeBackend(const StoreOptions& options);

}  // namespace wedge
