// The first-class asynchronous Store surface.
//
// The paper's headline mechanism is *lazy certification*: Phase I acks
// at edge latency while the cloud certifies in the background. Until
// this layer existed the façade still blocked every caller through
// WaitPhase1 — pump-to-completion — so the one thing the system does
// asynchronously could only be *measured* synchronously. AsyncPut /
// AsyncGet / AsyncMultiGet / AsyncScan / AsyncAppend return handles
// whose completions fire on the runtime's executors:
//
//   AsyncCommit c = store.AsyncPut(42, value);
//   c.OnPhase1([](const Status& s, const Commit& p1) { ... });   // edge ack
//   c.OnPhase2([](const Status& s, const Commit& p2) { ... });   // certified
//   AsyncOp<GetResult> g = store.AsyncGet(42, /*client=*/0,
//                                         {.deadline = 50 * kMillisecond});
//   g.Cancel();                           // settles Cancelled if still open
//
// Contracts:
//  - Settle-once: each handle slot (read result; commit phase) settles
//    exactly once — backend completion, deadline expiry, and Cancel
//    race, first wins. Phase I settles before Phase II per handle, even
//    when a deadline/cancel settles both.
//  - Callbacks run on whatever execution context settles the slot (a
//    node executor for backend completions, the control executor for
//    deadline expiries, the caller for Cancel), never under the
//    handle's lock.
//  - Admission: StoreOptions::async_inflight_limit bounds admitted ops
//    between issue and backend completion; excess issues settle
//    ResourceExhausted up front — a slow shard backpressures the issuer
//    instead of ballooning callback memory. Deadline/cancel settle the
//    *handle* early but the admission slot is held until the backend
//    actually completes (the work is still in flight down there).
//  - Wait() / WaitPhaseN() are the synchronous wrappers: they pump the
//    runtime (sim: step events; threads: sleep on the completion
//    condition) until the slot settles, so the sync Store methods are
//    thin shims over this surface.

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "api/backend.h"
#include "common/result.h"

namespace wedge {

/// Per-operation knobs of the async surface.
struct AsyncOptions {
  /// Settles the handle with DeadlineExceeded if the operation has not
  /// completed after this much runtime time (virtual under sim, wall
  /// under threads). 0 = no per-op deadline (the handle settles only on
  /// completion or Cancel; a synchronous Wait still has its own budget).
  SimTime deadline = 0;
};

namespace api_internal {

struct StoreCore;

/// Blocks until `done()` holds, bounded by `deadline` (> 0) or the
/// store-wide op_timeout. Defined in store.cc; `done` must read only
/// state written through Runtime::RunOnCompletion.
Status PumpCore(StoreCore& core, const std::function<bool()>& done,
                SimTime deadline);

/// Bounded in-flight admission shared by every async issue (sync reads
/// included). Owned by StoreCore, declared before the backend so it
/// outlives worker-thread teardown: completion wrappers may release
/// slots while the backend shuts down.
class AsyncGate {
 public:
  explicit AsyncGate(size_t limit = 0) : limit_(limit) {}

  void set_limit(size_t limit) { limit_ = limit; }

  /// Admits one operation, or refuses (false) when `limit` admitted ops
  /// are already between issue and backend completion.
  bool TryAdmit() {
    std::lock_guard<std::mutex> lock(mu_);
    if (limit_ > 0 && inflight_ >= limit_) {
      stats_.rejected++;
      return false;
    }
    inflight_++;
    stats_.issued++;
    if (inflight_ > stats_.inflight_peak) stats_.inflight_peak = inflight_;
    return true;
  }

  /// Backend completion arrived for an admitted op. Called exactly once
  /// per admitted op, from the completion wrapper — never from the
  /// deadline or cancel path, which settle the handle but not the slot.
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ > 0) inflight_--;
    stats_.completed++;
  }

  void CountCancelled() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.cancelled++;
  }
  void CountDeadlineExpired() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deadline_expired++;
  }

  AsyncStats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    AsyncStats s = stats_;
    s.inflight = inflight_;
    return s;
  }

 private:
  mutable std::mutex mu_;
  size_t limit_;
  uint64_t inflight_ = 0;
  AsyncStats stats_;
};

/// Shared state of a single-completion async read. `settled` guards the
/// slot under `mu`; `done` is the WaitUntil-visible mirror, written only
/// through Runtime::RunOnCompletion (the memory ordering a pumping
/// waiter synchronizes on).
template <typename T>
struct AsyncOpState {
  std::mutex mu;
  bool settled = false;
  Status status;
  T result{};
  std::function<void(const Status&, const T&)> on_done;

  bool done = false;  // RunOnCompletion-published; WaitUntil preds read it

  Runtime* rt = nullptr;
  AsyncGate* gate = nullptr;
};

/// First-wins settle. Returns true iff this call settled the slot; the
/// registered callback (if any) fires outside the lock, on the settling
/// context.
template <typename T>
bool SettleOp(const std::shared_ptr<AsyncOpState<T>>& st, const Status& s,
              T value) {
  std::function<void(const Status&, const T&)> cb;
  {
    std::lock_guard<std::mutex> lock(st->mu);
    if (st->settled) return false;
    st->settled = true;
    st->status = s;
    st->result = std::move(value);
    cb = std::move(st->on_done);
    st->on_done = nullptr;
  }
  st->rt->RunOnCompletion([&] { st->done = true; });
  if (cb) cb(st->status, st->result);
  return true;
}

/// Shared state of a two-phase write handle. Both the async AsyncCommit
/// and the sync CommitHandle are views over this.
struct AsyncCommitState {
  std::mutex mu;
  bool p1_settled = false;
  bool p2_settled = false;
  Status phase1_status;
  Status phase2_status;
  Commit phase1;
  Commit phase2;
  std::function<void(const Status&, const Commit&)> on_phase1;
  std::function<void(const Status&, const Commit&)> on_phase2;

  bool phase1_done = false;  // RunOnCompletion-published mirrors
  bool phase2_done = false;

  Runtime* rt = nullptr;
  AsyncGate* gate = nullptr;
};

/// Settles Phase I (phase2 == false) or Phase II (phase2 == true),
/// first-wins per phase. Settling Phase II force-settles a still-open
/// Phase I with the same outcome first, so the per-handle invariant
/// "Phase I settled before Phase II" holds even on the deadline/cancel
/// paths. Returns true iff any phase settled.
inline bool SettleCommit(const std::shared_ptr<AsyncCommitState>& st,
                         bool phase2, const Status& s, const Commit& c) {
  std::function<void(const Status&, const Commit&)> cb1, cb2;
  bool fire1 = false, fire2 = false;
  Status s1, s2;
  Commit c1, c2;
  {
    std::lock_guard<std::mutex> lock(st->mu);
    // Phase I settles on its own completion, or is forced by a Phase II
    // settle that found it still open.
    if (!st->p1_settled) {
      st->p1_settled = true;
      st->phase1_status = s;
      st->phase1 = c;
      cb1 = std::move(st->on_phase1);
      st->on_phase1 = nullptr;
      fire1 = true;
    }
    if (phase2 && !st->p2_settled) {
      st->p2_settled = true;
      st->phase2_status = s;
      st->phase2 = c;
      cb2 = std::move(st->on_phase2);
      st->on_phase2 = nullptr;
      fire2 = true;
    }
    s1 = st->phase1_status;
    c1 = st->phase1;
    s2 = st->phase2_status;
    c2 = st->phase2;
  }
  if (!fire1 && !fire2) return false;
  st->rt->RunOnCompletion([&] {
    if (fire1) st->phase1_done = true;
    if (fire2) st->phase2_done = true;
  });
  if (fire1 && cb1) cb1(s1, c1);
  if (fire2 && cb2) cb2(s2, c2);
  return true;
}

}  // namespace api_internal

/// Handle to one in-flight single-completion operation (Get / MultiGet /
/// Scan / ReadBlock). Copyable; copies share the state. Keeps the
/// deployment alive (like CommitHandle); destroying every handle with
/// the op still in flight is safe — the completion settles unobserved.
template <typename T>
class AsyncOp {
 public:
  /// Internal — built by Store's Async* methods.
  AsyncOp(std::shared_ptr<api_internal::StoreCore> core,
          std::shared_ptr<api_internal::AsyncOpState<T>> state)
      : core_(std::move(core)), state_(std::move(state)) {}

  /// True once the handle settled (completion, deadline, or Cancel).
  bool done() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->settled;
  }

  /// Registers the completion callback; fires immediately (on the
  /// caller) when the handle already settled, otherwise once, on the
  /// settling context. At most one callback per handle — a second
  /// registration replaces an unfired first.
  void OnDone(std::function<void(const Status&, const T&)> cb) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->settled) {
        state_->on_done = std::move(cb);
        return;
      }
    }
    cb(state_->status, state_->result);
  }

  /// Settles the handle with Cancelled if still open. The backend
  /// request (if admitted) still runs to completion down in the
  /// deployment; only this observation is abandoned.
  void Cancel() {
    if (api_internal::SettleOp<T>(state_, Status::Cancelled("cancelled"),
                                  T{})) {
      state_->gate->CountCancelled();
    }
  }

  /// Synchronous wrapper: pumps the runtime until the handle settles
  /// (bounded by `deadline` > 0, else the store-wide op_timeout) and
  /// returns the settled outcome.
  Result<T> Wait(SimTime deadline = 0) {
    auto* st = state_.get();
    WEDGE_RETURN_NOT_OK(
        api_internal::PumpCore(*core_, [st] { return st->done; }, deadline));
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->status.ok()) return state_->status;
    return state_->result;
  }

 private:
  std::shared_ptr<api_internal::StoreCore> core_;
  std::shared_ptr<api_internal::AsyncOpState<T>> state_;
};

/// Handle to one in-flight two-phase write (AsyncPut / AsyncPutBatch /
/// AsyncAppend). Phase I settles before Phase II, always.
class AsyncCommit {
 public:
  /// Internal — built by Store's Async* methods.
  AsyncCommit(std::shared_ptr<api_internal::StoreCore> core,
              std::shared_ptr<api_internal::AsyncCommitState> state)
      : core_(std::move(core)), state_(std::move(state)) {}

  bool phase1_done() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->p1_settled;
  }
  bool phase2_done() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->p2_settled;
  }

  /// Registers the Phase I (edge-ack) callback; fires immediately when
  /// that phase already settled.
  void OnPhase1(std::function<void(const Status&, const Commit&)> cb) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->p1_settled) {
        state_->on_phase1 = std::move(cb);
        return;
      }
    }
    cb(state_->phase1_status, state_->phase1);
  }

  /// Registers the Phase II (certified) callback; fires immediately
  /// when that phase already settled.
  void OnPhase2(std::function<void(const Status&, const Commit&)> cb) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->p2_settled) {
        state_->on_phase2 = std::move(cb);
        return;
      }
    }
    cb(state_->phase2_status, state_->phase2);
  }

  /// Settles every still-open phase with Cancelled (Phase I first).
  void Cancel() {
    if (api_internal::SettleCommit(state_, /*phase2=*/true,
                                   Status::Cancelled("cancelled"), Commit{})) {
      state_->gate->CountCancelled();
    }
  }

  /// Synchronous wrappers over the phase completions (see CommitHandle).
  Result<Commit> WaitPhase1(SimTime deadline = 0) {
    auto* st = state_.get();
    WEDGE_RETURN_NOT_OK(api_internal::PumpCore(
        *core_, [st] { return st->phase1_done; }, deadline));
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->phase1_status.ok()) return state_->phase1_status;
    return state_->phase1;
  }
  Result<Commit> WaitPhase2(SimTime deadline = 0) {
    auto* st = state_.get();
    WEDGE_RETURN_NOT_OK(api_internal::PumpCore(
        *core_, [st] { return st->phase2_done; }, deadline));
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->phase2_status.ok()) return state_->phase2_status;
    return state_->phase2;
  }

 private:
  std::shared_ptr<api_internal::StoreCore> core_;
  std::shared_ptr<api_internal::AsyncCommitState> state_;
};

}  // namespace wedge
