// Shared get-response assembly: given an LSMerkle tree and the block log
// (for L0 certificates), build the proof-carrying response of §V-B.
// Used by the WedgeChain edge and by the edge-baseline edge.

#pragma once

#include "log/edge_log.h"
#include "lsmerkle/lsmerkle_tree.h"
#include "lsmerkle/read_proof.h"
#include "lsmerkle/scan_proof.h"

namespace wedge {

/// Assembles an honest get response for `key`. `hide_l0` simulates the
/// stale-snapshot attacker (responds from the pre-L0 state).
GetResponseBody AssembleGetResponse(const LsmerkleTree& lsm,
                                    const EdgeLog& log, Key key,
                                    bool hide_l0 = false);

/// Assembles a scan response for [lo, hi]: the claimed newest-per-key
/// result plus the completeness proof (all L0 blocks; per level, the
/// adjacent page run covering the range). `drop_last_run_page` simulates
/// a malicious edge truncating a scan (detected by the coverage check).
ScanResponseBody AssembleScanResponse(const LsmerkleTree& lsm,
                                      const EdgeLog& log, Key lo, Key hi,
                                      bool drop_last_run_page = false);

}  // namespace wedge
