#include "core/edge_node.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/read_service.h"

namespace wedge {

EdgeNode::EdgeNode(Executor* exec, Transport* net, const KeyStore* keystore,
                   Signer signer, NodeId cloud, Dc location, EdgeConfig config,
                   CostModel costs)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      cloud_(cloud),
      location_(location),
      config_(config),
      costs_(costs),
      fg_(exec->MakeLane()),
      bg_(exec->MakeLane()),
      builder_(config.ops_per_block, 0),
      lsm_(config.lsm) {}

void EdgeNode::Start() {
  net_->Attach(id(), location_, this);
  log_.SetRetention(config_.log_retention_blocks);
  ScheduleNoopTimer();
}

void EdgeNode::RestoreState(EdgeStorage::RecoveredState state) {
  log_ = std::move(state.log);
  lsm_ = std::move(state.tree);
  last_seq_ = std::move(state.last_seq);
  l0_blocks_consumed_ = state.l0_blocks_consumed;
  l0_blocks_seen_ = state.blocks_in_log;
  builder_ = BlockBuilder(config_.ops_per_block,
                          static_cast<BlockId>(log_.size()));
}

void EdgeNode::SendSealed(NodeId to, MsgType type, Bytes body) {
  net_->Send(id(), to, sealer_.Seal(to, type, body));
}

void EdgeNode::OnMessage(NodeId from, Slice payload, SimTime now) {
  auto env = opener_.Open(payload);
  if (!env.ok()) {
    WLOG_DEBUG << "edge " << id() << ": dropping message: " << env.status();
    return;
  }
  switch (env->type) {
    case MsgType::kAddRequest:
    case MsgType::kPutRequest: {
      auto req = AddRequest::Decode(env->body);
      if (!req.ok()) return;
      const bool is_kv = env->type == MsgType::kPutRequest;
      // Foreground lane: serialized batch handling + parallelizable tail.
      const SimTime serial = costs_.EdgeBatchSerial(req->entries.size());
      fg_->ExecuteAfter(serial, costs_.edge_batch_parallel,
                        [this, from, r = std::move(*req), is_kv] {
                          HandleWrite(from, r, is_kv, exec_->Now());
                        });
      break;
    }
    case MsgType::kReadRequest: {
      auto req = ReadRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_->Execute(costs_.edge_read_serial, [this, from, r = *req] {
        HandleRead(from, r, exec_->Now());
      });
      break;
    }
    case MsgType::kGetRequest: {
      auto req = GetRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_->Execute(costs_.edge_read_serial, [this, from, r = *req] {
        HandleGet(from, r, exec_->Now());
      });
      break;
    }
    case MsgType::kScanRequest: {
      auto req = ScanRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_->Execute(costs_.edge_read_serial, [this, from, r = *req] {
        HandleScan(from, r, exec_->Now());
      });
      break;
    }
    case MsgType::kReserveRequest: {
      auto req = ReserveRequest::Decode(env->body);
      if (!req.ok()) return;
      fg_->Execute(costs_.edge_read_serial, [this, from, r = *req] {
        HandleReserve(from, r, exec_->Now());
      });
      break;
    }
    case MsgType::kBlockProof: {
      if (from != cloud_) return;
      auto proof = BlockProof::Decode(env->body);
      if (!proof.ok()) return;
      HandleBlockProof(*proof, now);
      break;
    }
    case MsgType::kCertifyReject: {
      // The cloud has flagged us. An honest edge never receives this.
      WLOG_WARN << "edge " << id() << ": certification rejected by cloud";
      break;
    }
    case MsgType::kMergeResponse: {
      if (from != cloud_) return;
      auto resp = MergeResponse::Decode(env->body);
      if (!resp.ok()) return;
      HandleMergeResponse(std::move(*resp), now);
      break;
    }
    case MsgType::kBackupBlocks: {
      if (from != cloud_) return;
      auto resp = BackupBlocks::Decode(env->body);
      if (!resp.ok()) return;
      HandleBackupBlocks(std::move(*resp), now);
      break;
    }
    default:
      WLOG_DEBUG << "edge " << id() << ": unexpected "
                 << MsgTypeToString(env->type);
  }
}

void EdgeNode::HandleWrite(NodeId from, const AddRequest& req, bool is_kv,
                           SimTime now) {
  // A kv/raw transition flushes the current buffer so a block is never
  // mixed (L0 pages must parse as puts).
  if (builder_.pending() > 0 && buffer_is_kv_ != is_kv) {
    FormBlock(buffer_is_kv_, now);
  }
  buffer_is_kv_ = is_kv;

  for (const Entry& e : req.entries) {
    // Validity: signed by a registered client, and the signer is the
    // connection peer.
    if (e.client != from || !e.Validate(*keystore_).ok()) {
      stats_.replays_rejected++;
      continue;
    }
    // Replay protection: client sequence numbers must increase.
    auto it = last_seq_.find(e.client);
    if (it != last_seq_.end() && e.seq <= it->second) {
      stats_.replays_rejected++;
      continue;
    }
    // Reserved entries only fit their exact position (best-effort
    // reservations, §IV-E: a missed slot means the client re-reserves).
    if (e.has_reservation && (e.reserved_bid != builder_.next_bid() ||
                              e.reserved_slot != builder_.pending())) {
      stats_.reservation_misses++;
      continue;
    }
    last_seq_[e.client] = e.seq;
    buffer_contribs_.push_back({from, req.req_id});
    stats_.entries_accepted++;
    auto block = builder_.Add(e, now);
    if (block.has_value()) {
      // Finish inline: a large request may span several blocks, each with
      // its own response/certification round.
      FinishBlock(std::move(*block), is_kv, now);
    }
  }
  if (builder_.pending() > 0) {
    ScheduleFlushTimer();
  }
}

void EdgeNode::FormBlock(bool is_kv, SimTime now) {
  auto block = builder_.Flush(now);
  if (!block.has_value()) return;
  FinishBlock(std::move(*block), is_kv, now);
}

void EdgeNode::FinishBlock(Block block, bool is_kv, SimTime now) {
  flush_generation_++;
  const BlockId bid = block.id;
  (void)log_.Append(block);
  stats_.blocks_formed++;

  // Durability before the Phase I promise: the signed add-response must
  // never outlive the block it vouches for.
  if (storage_ != nullptr) {
    if (storage_->PersistBlock(block, is_kv).ok()) {
      stats_.storage_writes++;
    } else {
      stats_.storage_errors++;
    }
  }

  // Every block enters L0 (raw appends as pair-less units): the L0 id
  // stream must stay contiguous for read proofs even on mixed
  // put/append logs. The frontier counter therefore counts all blocks.
  l0_blocks_seen_++;
  if (auto st = lsm_.ApplyBlock(block); !st.ok()) {
    WLOG_WARN << "edge " << id() << ": apply block failed: " << st;
  }

  // Deduplicate contributors (a client may have several entries in the
  // block) and respond to each with the signed block: Phase I commit.
  std::vector<Contribution> contribs = std::move(buffer_contribs_);
  buffer_contribs_.clear();
  std::map<std::pair<NodeId, SeqNum>, bool> seen;
  std::vector<Contribution> unique;
  for (const auto& c : contribs) {
    if (seen.emplace(std::make_pair(c.client, c.req_id), true).second) {
      unique.push_back(c);
    }
  }
  for (const auto& c : unique) {
    AddResponse resp;
    resp.req_id = c.req_id;
    resp.bid = bid;
    resp.block = block;
    if (misbehavior_.equivocate_to_victim && c.client == misbehavior_.victim &&
        !resp.block.entries.empty()) {
      // Give the victim an inconsistent view: same bid, tampered payload.
      resp.block.entries[0].payload.push_back(0xee);
    }
    SendSealed(c.client, MsgType::kAddResponse, resp.Encode());
  }
  block_contribs_[bid] = std::move(unique);

  // Background: lazy (asynchronous) certification — digest only.
  Digest256 digest;
  if (misbehavior_.certify_tampered) {
    Block tampered = block;
    if (!tampered.entries.empty()) tampered.entries[0].payload.push_back(0xbb);
    digest = tampered.Digest();
  } else {
    digest = block.Digest();
  }
  if (!misbehavior_.drop_certifies) {
    const SimTime cost = costs_.EdgeCert(block.ByteSize());
    std::optional<Block> full;
    if (config_.ship_full_blocks) full = block;
    pending_certify_[bid] = PendingCertify{digest, is_kv};
    bg_->Execute(cost, [this, bid, digest, is_kv, full = std::move(full)] {
      BlockCertify msg;
      msg.bid = bid;
      msg.digest = digest;
      msg.is_kv = is_kv;
      msg.full_block = full;
      SendSealed(cloud_, MsgType::kBlockCertify, msg.Encode());
      stats_.certifies_sent++;
    });
    ScheduleCertifyRetry();
  }

  MaybeStartMerge(now, /*noop=*/false);
}

void EdgeNode::HandleRead(NodeId from, const ReadRequest& req, SimTime now) {
  stats_.reads_served++;
  ReadResponse resp;
  resp.req_id = req.req_id;
  resp.bid = req.bid;
  if (misbehavior_.omit_reads || !log_.HasBlock(req.bid)) {
    if (!misbehavior_.omit_reads && config_.backup_fetch) {
      // Read repair: park the reader and fetch the block (evicted or
      // crash-lost) from the cloud's backup instead of answering "not
      // available" — which a gossip-armed client would dispute.
      repair_waiters_[req.bid].push_back({from, req.req_id});
      BackupFetch fetch;
      fetch.from_bid = req.bid;
      fetch.max_blocks = 1;
      SendSealed(cloud_, MsgType::kBackupFetch, fetch.Encode());
      stats_.backup_fetches_sent++;
      return;
    }
    resp.available = false;
    SendSealed(from, MsgType::kReadResponse, resp.Encode());
    return;
  }
  resp.available = true;
  resp.block = *log_.GetBlock(req.bid);
  resp.proof = log_.GetCertificate(req.bid);
  if (!resp.proof.has_value()) {
    // Phase I read: remember the reader so the proof can be forwarded.
    read_waiters_[req.bid].push_back(from);
  }
  SendSealed(from, MsgType::kReadResponse, resp.Encode());
  (void)now;
}

void EdgeNode::HandleGet(NodeId from, const GetRequest& req, SimTime now) {
  stats_.gets_served++;
  GetResponse resp;
  resp.req_id = req.req_id;
  resp.body = AssembleGetResponse(req.key);
  if (misbehavior_.tamper_get_value && resp.body.found) {
    resp.body.value.push_back(0xdd);
  }
  SendSealed(from, MsgType::kGetResponse, resp.Encode());
  (void)now;
}

void EdgeNode::HandleScan(NodeId from, const ScanRequest& req, SimTime now) {
  stats_.scans_served++;
  ScanResponse resp;
  resp.req_id = req.req_id;
  if (misbehavior_.rollback_snapshot && rollback_state_.has_value()) {
    resp.body = AssembleScanResponse(rollback_state_->first,
                                     rollback_state_->second, req.lo, req.hi,
                                     misbehavior_.truncate_scans);
  } else {
    resp.body = AssembleScanResponse(lsm_, log_, req.lo, req.hi,
                                     misbehavior_.truncate_scans);
  }
  SendSealed(from, MsgType::kScanResponse, resp.Encode());
  (void)now;
}

void EdgeNode::HandleReserve(NodeId from, const ReserveRequest& req,
                             SimTime now) {
  // Best-effort reservation (§IV-E): the next slot in the buffer.
  ReserveResponse resp;
  resp.req_id = req.req_id;
  resp.bid = builder_.next_bid();
  resp.slot = static_cast<uint32_t>(builder_.pending());
  SendSealed(from, MsgType::kReserveResponse, resp.Encode());
  (void)now;
}

void EdgeNode::CaptureRollbackSnapshot() {
  rollback_state_.emplace(lsm_, log_);
}

GetResponseBody EdgeNode::AssembleGetResponse(Key key) const {
  if (misbehavior_.rollback_snapshot && rollback_state_.has_value()) {
    return wedge::AssembleGetResponse(rollback_state_->first,
                                      rollback_state_->second, key,
                                      misbehavior_.serve_stale_gets);
  }
  return wedge::AssembleGetResponse(lsm_, log_, key,
                                    misbehavior_.serve_stale_gets);
}

void EdgeNode::HandleBlockProof(const BlockProof& proof, SimTime now) {
  if (proof.cert.Validate(*keystore_).ok() && proof.cert.edge == id()) {
    // Proof arrival is progress: stop retrying this block and reset the
    // backoff (the cloud is reachable again).
    if (pending_certify_.erase(proof.cert.bid) != 0) {
      retry_backoff_ = config_.certify_retry.initial_backoff;
      retry_attempts_ = 0;
    }
    if (log_.SetCertificate(proof.cert).ok()) {
      stats_.proofs_received++;
      if (storage_ != nullptr) {
        if (storage_->PersistCertificate(proof.cert).ok()) {
          stats_.storage_writes++;
        } else {
          stats_.storage_errors++;
        }
      }
    }
  }
  // Forward to Phase I writers and readers of this block regardless; the
  // clients verify the certificate themselves.
  Bytes body = proof.Encode();
  auto cit = block_contribs_.find(proof.cert.bid);
  if (cit != block_contribs_.end()) {
    for (const auto& c : cit->second) {
      SendSealed(c.client, MsgType::kBlockProof, body);
    }
    block_contribs_.erase(cit);
  }
  auto rit = read_waiters_.find(proof.cert.bid);
  if (rit != read_waiters_.end()) {
    for (NodeId client : rit->second) {
      SendSealed(client, MsgType::kBlockProof, body);
    }
    read_waiters_.erase(rit);
  }
  (void)now;
}

void EdgeNode::RequestBackupSync() {
  BackupFetch fetch;
  fetch.from_bid = log_.size();
  fetch.max_blocks = 0;  // everything the cloud has
  SendSealed(cloud_, MsgType::kBackupFetch, fetch.Encode());
  stats_.backup_fetches_sent++;
}

void EdgeNode::HandleBackupBlocks(const BackupBlocks& resp, SimTime now) {
  for (const BackupItem& item : resp.items) {
    // Trust but verify: the certificate must be the cloud's and must pin
    // exactly this body.
    if (!item.cert.Validate(*keystore_).ok() || item.cert.edge != id() ||
        item.cert.bid != item.block.id ||
        item.cert.digest != item.block.Digest()) {
      WLOG_WARN << "edge " << id() << ": rejecting bad backup item for block "
                << item.block.id;
      continue;
    }

    if (item.block.id == log_.size()) {
      // Tail repair: extend the log with the recovered block — but only
      // while the builder is idle. Entries already buffered are destined
      // for block id == current log end; appending under them would
      // shift the numbering out from under the next flush. (Parked
      // readers below are still served from the verified copy.)
      if (builder_.pending() > 0) continue;
      if (!log_.Append(item.block).ok()) continue;
      (void)log_.SetCertificate(item.cert);
      stats_.backup_blocks_restored++;
      if (storage_ != nullptr) {
        if (storage_->PersistBlock(item.block, item.is_kv).ok() &&
            storage_->PersistCertificate(item.cert).ok()) {
          stats_.storage_writes++;
        } else {
          stats_.storage_errors++;
        }
      }
      // A restored block belongs in L0 only when its ordinal is past
      // the manifest's merge frontier; earlier ones were consumed by
      // merges and already live (durably) in the levels. Raw appends
      // count too — they occupy L0 slots (pair-less).
      l0_blocks_seen_++;
      if (l0_blocks_seen_ > l0_blocks_consumed_) {
        if (auto st = lsm_.ApplyBlock(item.block); !st.ok()) {
          WLOG_WARN << "edge " << id()
                    << ": backup block failed L0 apply: " << st;
        }
      }
      builder_ = BlockBuilder(config_.ops_per_block,
                              static_cast<BlockId>(log_.size()));
    }

    // Serve any reads parked on this block, straight from the verified
    // copy (evicted blocks are served without re-inserting them).
    auto wit = repair_waiters_.find(item.block.id);
    if (wit != repair_waiters_.end()) {
      for (const auto& [client, req_id] : wit->second) {
        ReadResponse out;
        out.req_id = req_id;
        out.bid = item.block.id;
        out.available = true;
        out.block = item.block;
        out.proof = item.cert;
        SendSealed(client, MsgType::kReadResponse, out.Encode());
        stats_.repaired_reads++;
      }
      repair_waiters_.erase(wit);
    }
  }

  // Parked readers whose block this response proves the cloud lacks get
  // the honest negative answer. The covered range is [from_bid, last
  // returned bid] — or everything past from_bid when the response was
  // not truncated by max_blocks.
  const BlockId covered_to =
      resp.complete ? std::numeric_limits<BlockId>::max()
                    : (resp.items.empty() ? resp.from_bid
                                          : resp.items.back().block.id);
  std::vector<BlockId> still_missing;
  for (const auto& [bid, waiters] : repair_waiters_) {
    if (bid >= resp.from_bid && bid <= covered_to && !log_.HasBlock(bid)) {
      still_missing.push_back(bid);
    }
  }
  for (BlockId bid : still_missing) {
    for (const auto& [client, req_id] : repair_waiters_[bid]) {
      ReadResponse out;
      out.req_id = req_id;
      out.bid = bid;
      out.available = false;
      SendSealed(client, MsgType::kReadResponse, out.Encode());
    }
    repair_waiters_.erase(bid);
  }
  (void)now;
}

void EdgeNode::MaybeStartMerge(SimTime now, bool noop) {
  if (lsm_.merge_in_flight()) return;
  auto level = lsm_.NeedsMerge();
  if (!level.has_value()) {
    if (!noop) return;
    level = 0;  // freshness no-op merge: re-sign the (possibly empty) state
    stats_.noop_merges++;
  }
  lsm_.set_merge_in_flight(true);

  MergeRequest req;
  req.from_level = static_cast<uint32_t>(*level);
  req.num_levels = static_cast<uint32_t>(lsm_.level_count() - 1);
  req.cur_epoch = lsm_.epoch();
  if (*level == 0) {
    for (const auto& unit : lsm_.l0_units()) {
      req.l0_blocks.push_back(*unit.block);
    }
  } else {
    req.from_pages = lsm_.level(*level).pages();
  }
  if (*level + 1 < lsm_.level_count()) {
    req.to_pages = lsm_.level(*level + 1).pages();
  }

  // Preparing and shipping the merge runs on the background lane.
  const SimTime cost = costs_.EdgeCert(req.ByteSize());
  bg_->Execute(cost, [this, r = std::move(req)] {
    SendSealed(cloud_, MsgType::kMergeRequest, r.Encode());
  });
  (void)now;
}

void EdgeNode::HandleMergeResponse(const MergeResponse& resp, SimTime now) {
  if (!resp.root_cert.Validate(*keystore_).ok() ||
      resp.root_cert.edge != id()) {
    WLOG_WARN << "edge " << id() << ": invalid merge response";
    lsm_.set_merge_in_flight(false);
    return;
  }
  Status st = lsm_.InstallMergeResult(resp.from_level, resp.consumed_l0,
                                      resp.merged, resp.root_cert);
  lsm_.set_merge_in_flight(false);
  if (!st.ok()) {
    WLOG_WARN << "edge " << id() << ": merge install failed: " << st;
    return;
  }
  stats_.merges_completed++;
  last_merge_time_ = now;

  if (storage_ != nullptr) {
    // The manifest wants every level the install touched: the target
    // level always, and the emptied source level when it was not L0.
    if (resp.from_level == 0) l0_blocks_consumed_ += resp.consumed_l0;
    std::vector<std::pair<size_t, std::vector<Page>>> changed;
    if (resp.from_level >= 1) changed.emplace_back(resp.from_level,
                                                   std::vector<Page>{});
    changed.emplace_back(resp.from_level + 1,
                         lsm_.level(resp.from_level + 1).pages());
    if (storage_->PersistMerge(changed, resp.root_cert,
                               l0_blocks_consumed_).ok()) {
      stats_.storage_writes++;
    } else {
      stats_.storage_errors++;
    }
  }

  // Cascade if the next level overflowed.
  MaybeStartMerge(now, /*noop=*/false);
}

void EdgeNode::ScheduleFlushTimer() {
  if (config_.partial_flush_delay <= 0) return;
  const uint64_t gen = flush_generation_;
  exec_->After(config_.partial_flush_delay, [this, gen] {
    // Only flush if no block has formed since the timer was armed.
    if (flush_generation_ == gen && builder_.pending() > 0) {
      fg_->Execute(costs_.EdgeBatchSerial(0), [this] {
        FormBlock(buffer_is_kv_, exec_->Now());
      });
    }
  });
}

void EdgeNode::ScheduleCertifyRetry() {
  const RetryPolicy& policy = config_.certify_retry;
  if (!policy.enabled || retry_timer_armed_ || pending_certify_.empty()) {
    return;
  }
  if (policy.max_attempts > 0 && retry_attempts_ >= policy.max_attempts) {
    return;
  }
  if (retry_backoff_ <= 0) retry_backoff_ = policy.initial_backoff;
  retry_timer_armed_ = true;
  const uint64_t gen = restart_generation_;
  exec_->After(retry_backoff_, [this, gen] {
    if (gen != restart_generation_) return;  // crashed since arming
    retry_timer_armed_ = false;
    if (pending_certify_.empty()) return;  // proofs arrived in time
    retry_attempts_++;
    ResendPendingCertifies();
    retry_backoff_ = std::min<SimTime>(
        config_.certify_retry.max_backoff,
        static_cast<SimTime>(static_cast<double>(retry_backoff_) *
                             config_.certify_retry.multiplier));
    ScheduleCertifyRetry();
  });
}

void EdgeNode::ResendPendingCertifies() {
  for (const auto& [bid, pending] : pending_certify_) {
    BlockCertify msg;
    msg.bid = bid;
    msg.digest = pending.digest;
    msg.is_kv = pending.is_kv;
    if (config_.ship_full_blocks && log_.HasBlock(bid)) {
      msg.full_block = *log_.GetBlock(bid);
    }
    SendSealed(cloud_, MsgType::kBlockCertify, msg.Encode());
    stats_.certify_retries++;
  }
}

void EdgeNode::DropVolatileState() {
  log_ = EdgeLog();
  log_.SetRetention(config_.log_retention_blocks);
  lsm_ = LsmerkleTree(config_.lsm);
  builder_ = BlockBuilder(config_.ops_per_block, 0);
  buffer_contribs_.clear();
  block_contribs_.clear();
  read_waiters_.clear();
  repair_waiters_.clear();
  rollback_state_.reset();
  last_seq_.clear();
  pending_certify_.clear();
  buffer_is_kv_ = false;
  flush_generation_++;
  restart_generation_++;
  retry_backoff_ = 0;
  retry_attempts_ = 0;
  retry_timer_armed_ = false;
  l0_blocks_consumed_ = 0;
  l0_blocks_seen_ = 0;
  last_merge_time_ = 0;
  stats_.state_drops++;
}

void EdgeNode::ScheduleNoopTimer() {
  if (config_.noop_merge_period <= 0) return;
  exec_->After(config_.noop_merge_period, [this] {
    if (exec_->Now() - last_merge_time_ >= config_.noop_merge_period) {
      MaybeStartMerge(exec_->Now(), /*noop=*/true);
    }
    ScheduleNoopTimer();
  });
}

}  // namespace wedge
