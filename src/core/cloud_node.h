// CloudNode: the trusted cloud of WedgeChain (paper §III, §IV).
//
// Responsibilities:
//  - certify block digests (at most one digest per (edge, bid): the
//    agreement guarantee), flagging equivocators;
//  - run LSMerkle merges on behalf of edges and sign the resulting roots;
//  - adjudicate disputes from clients and punish lying edges;
//  - gossip signed per-edge log sizes to clients (omission mitigation).
//
// The cloud never stores block *contents* for WedgeChain edges — only
// digests (data-free certification). Merge requests do carry data, which
// the cloud verifies against previously certified digests/roots before
// trusting it.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/trust_authority.h"
#include "crypto/signature.h"
#include "runtime/runtime.h"
#include "simnet/cost_model.h"
#include "storage/cloud_storage.h"
#include "wire/message.h"
#include "wire/protocol.h"
#include "wire/session.h"

namespace wedge {

struct CloudStats {
  uint64_t certified_blocks = 0;
  uint64_t duplicate_certifies = 0;
  uint64_t equivocations_detected = 0;
  uint64_t merges_performed = 0;
  uint64_t disputes_received = 0;
  uint64_t disputes_upheld = 0;
  uint64_t gossip_sent = 0;
  uint64_t backup_blocks_stored = 0;
  uint64_t backup_fetches_served = 0;
  uint64_t failover_gets_served = 0;
  uint64_t storage_errors = 0;
};

class CloudNode : public Endpoint {
 public:
  CloudNode(Executor* exec, Transport* net, const KeyStore* keystore,
            TrustAuthority* authority, Signer signer, Dc location,
            CloudConfig config, CostModel costs);

  /// Attaches to the network and starts the gossip timer.
  void Start();

  /// Attaches durable storage (non-owning; must outlive the node). The
  /// certification registry, merge-state mirror, flag set, and backup
  /// blocks are persisted as they change. Call before Start().
  void AttachStorage(CloudStorage* storage) { storage_ = storage; }

  /// Adopts a recovered registry after a restart. Call before Start().
  void RestoreState(CloudStorage::RecoveredState state);

  NodeId id() const { return signer_.id(); }

  /// Registers a client to receive gossip about `edge`.
  void SubscribeGossip(NodeId client, NodeId edge);

  void OnMessage(NodeId from, Slice payload, SimTime now) override;

  const CloudStats& stats() const { return stats_; }

  /// The digest this cloud certified for (edge, bid), if any.
  std::optional<Digest256> CertifiedDigest(NodeId edge, BlockId bid) const;

  bool IsFlagged(NodeId edge) const { return flagged_.count(edge) != 0; }

 private:
  struct EdgeRecord {
    std::map<BlockId, Digest256> certified;
    /// Number of leading certified bids (0..contiguous-1 all certified);
    /// this is the "log size" gossip advertises.
    uint64_t contiguous = 0;
    /// LSMerkle state mirror: per-level Merkle roots + epoch, updated on
    /// every merge this cloud signs.
    std::vector<Digest256> level_roots;
    Epoch epoch = 0;
    /// Full backup blocks (§II-A), kept only when config.backup_blocks:
    /// populated from merge requests and full-block certifies — the only
    /// times data-free certification lets the cloud see block bodies.
    std::map<BlockId, std::pair<Block, bool>> backup;
  };

  EdgeRecord& RecordFor(NodeId edge);
  void AdvanceContiguous(EdgeRecord* rec);

  /// Stores `block` in the edge's backup (and persists it) if backups
  /// are enabled and the block is new.
  void MaybeBackup(NodeId edge, EdgeRecord* rec, const Block& block,
                   bool is_kv);

  void HandleBlockCertify(NodeId edge, const BlockCertify& msg, SimTime now);
  void HandleMergeRequest(NodeId edge, const MergeRequest& msg, SimTime now);
  void HandleDispute(NodeId client, const Dispute& msg, SimTime now);
  void HandleBackupFetch(NodeId edge, const BackupFetch& msg, SimTime now);
  void HandleCloudGet(NodeId client, const CloudGetRequest& msg, SimTime now);
  void GossipTick();

  void FlagMalicious(NodeId edge, const std::string& reason, SimTime now);

  void SendSealed(NodeId to, MsgType type, Bytes body);

  Executor* exec_;
  Transport* net_;
  const KeyStore* keystore_;
  TrustAuthority* authority_;
  Signer signer_;
  // Session channels (v2 envelopes). Initialized from signer_/keystore_;
  // counters are durable identity state, not volatile protocol state.
  SessionSealer sealer_;
  SessionOpener opener_;
  Dc location_;
  CloudConfig config_;
  CostModel costs_;

  std::unique_ptr<Lane> cert_lane_;   // digest certification (data-free)
  std::unique_ptr<Lane> merge_lane_;  // merges & dispute adjudication

  std::unordered_map<NodeId, EdgeRecord> edges_;
  std::set<NodeId> flagged_;
  std::multimap<NodeId, NodeId> gossip_subs_;  // edge -> clients
  /// Optional durability (null = in-memory only, the paper's setting).
  CloudStorage* storage_ = nullptr;
  CloudStats stats_;
};

}  // namespace wedge
