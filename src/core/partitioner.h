// Partitioner + OwnershipTable: key ownership for the sharding subsystem.
//
// A sharded deployment runs one LSMerkle tree (and log) per edge node.
// Ownership has two layers:
//
//  - Partitioner: the pure, stateless ownership *function* — the seed
//    mapping every sharded store opens with. Two schemes:
//      - kHash: keys are mixed (splitmix64) and spread uniformly.
//        Balanced under any key distribution, but a range scan must fan
//        out to every shard.
//      - kRange: the key domain [0, range_span) is cut into contiguous
//        slices, one per shard (keys >= range_span belong to the last
//        shard). Scans touch only the shards whose slice intersects the
//        range.
//  - OwnershipTable: the epoch-stamped, *versioned* ownership map. Epoch
//    1 is the seed partitioner's mapping; a shard split installs epoch
//    N+1 in which part of the source shard's key range belongs to the
//    destination. Every historical epoch stays queryable, so a request
//    routed under a stale epoch can be redirected deterministically.
//
// The same Partitioner instance is shared by the api-layer ShardRouter
// (via its OwnershipTable), the deployments (client-to-edge pinning),
// and the workload key generators (partition-aware distributions), so
// ownership can never disagree across layers.

#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "lsmerkle/kv.h"

namespace wedge {

/// Version number of an ownership map. Distinct from the LSMerkle
/// snapshot Epoch: ownership epochs advance only on resharding.
using OwnershipEpoch = uint64_t;

enum class ShardScheme : uint8_t {
  kHash = 0,
  kRange = 1,
};

inline const char* ShardSchemeToString(ShardScheme s) {
  return s == ShardScheme::kRange ? "range" : "hash";
}

/// Sharding knobs carried by DeploymentConfig / StoreOptions.
struct ShardingConfig {
  /// Number of key partitions. 0 = sharding off (legacy behaviour:
  /// clients round-robin over all edges, no routing layer). 1 = a single
  /// shard (all keys on edge 0). Must not exceed num_edges.
  size_t num_shards = 0;
  ShardScheme scheme = ShardScheme::kHash;
  /// kRange only: exclusive upper bound of the key domain that is cut
  /// into slices. Keys >= range_span map to the last shard.
  uint64_t range_span = 0;
  /// Physical shard slots (edges + per-shard clients + the block-id
  /// modulus) to provision at Open. Slots beyond num_shards start idle —
  /// they own no keys — and exist so SplitShard can migrate a key range
  /// onto one without rebuilding the deployment. 0 = num_shards (no
  /// spare slots).
  size_t capacity = 0;

  bool enabled() const { return num_shards >= 1; }
  /// Physical shard slots actually provisioned.
  size_t slots() const { return std::max(capacity, num_shards); }
  /// True when ownership is expressible as contiguous key slices — the
  /// precondition for every migration (split and merge). Range seeds
  /// and single-shard seeds qualify; a multi-shard hash seed
  /// interleaves keys and stays frozen. The one definition shared by
  /// Open-time validation, the OwnershipTable, and the balancer
  /// validation, so they can never drift apart.
  bool range_expressible() const {
    return scheme == ShardScheme::kRange || num_shards <= 1;
  }
};

class Partitioner {
 public:
  /// A single-shard partitioner (everything maps to shard 0).
  Partitioner() : Partitioner(ShardScheme::kHash, 1, 0) {}

  Partitioner(ShardScheme scheme, size_t shards, uint64_t range_span = 0)
      : scheme_(scheme),
        shards_(shards == 0 ? 1 : shards),
        span_(range_span) {}

  explicit Partitioner(const ShardingConfig& cfg)
      : Partitioner(cfg.scheme, cfg.num_shards, cfg.range_span) {}

  static Partitioner Hash(size_t shards) {
    return Partitioner(ShardScheme::kHash, shards);
  }
  static Partitioner Range(size_t shards, uint64_t range_span) {
    return Partitioner(ShardScheme::kRange, shards, range_span);
  }

  size_t shards() const { return shards_; }
  ShardScheme scheme() const { return scheme_; }
  uint64_t range_span() const { return span_; }

  /// The shard that owns `key`. Total: every key has exactly one owner.
  size_t ShardOf(Key key) const {
    if (shards_ == 1) return 0;
    if (scheme_ == ShardScheme::kRange) {
      if (span_ == 0 || key >= span_) return shards_ - 1;
      return static_cast<size_t>(
          (static_cast<unsigned __int128>(key) * shards_) / span_);
    }
    // Multiply-shift over the mixed key: uniform over [0, shards).
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(Mix(key)) * shards_) >> 64);
  }

  /// The contiguous key interval [lo, hi] owned by shard `s` under the
  /// kRange scheme. For kHash every shard owns an interleaved subset, so
  /// the full key domain is returned (a scan must consult every shard).
  std::pair<Key, Key> OwnedRange(size_t s) const {
    if (scheme_ != ShardScheme::kRange || shards_ == 1 || span_ == 0) {
      return {kMinKey, kMaxKey};
    }
    const Key lo = Boundary(s);
    const Key hi = (s + 1 >= shards_) ? kMaxKey : Boundary(s + 1) - 1;
    return {lo, hi};
  }

  /// True when a scan of [lo, hi] must consult shard `s` — i.e. the
  /// shard's owned interval intersects the scan range.
  bool ScanTouches(size_t s, Key lo, Key hi) const {
    const auto owned = OwnedRange(s);
    return owned.first <= hi && lo <= owned.second;
  }

  /// Clamps a scan range to the part shard `s` can own. Only meaningful
  /// when ScanTouches(s, lo, hi).
  std::pair<Key, Key> ClampToShard(size_t s, Key lo, Key hi) const {
    const auto owned = OwnedRange(s);
    return {std::max(lo, owned.first), std::min(hi, owned.second)};
  }

 private:
  /// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// First key of shard `s` under kRange: the smallest k with
  /// k * shards / span == s, i.e. ceil(s * span / shards).
  Key Boundary(size_t s) const {
    const unsigned __int128 num =
        static_cast<unsigned __int128>(s) * span_ + (shards_ - 1);
    return static_cast<Key>(num / shards_);
  }

  ShardScheme scheme_;
  size_t shards_;
  uint64_t span_;
};

/// One contiguous slice [lo, hi] of the key domain owned by a shard
/// under some ownership epoch.
struct OwnedSlice {
  Key lo = kMinKey;
  Key hi = kMaxKey;
  size_t shard = 0;

  bool operator==(const OwnedSlice& o) const {
    return lo == o.lo && hi == o.hi && shard == o.shard;
  }
};

/// A merge the table could install for some shard: the slice that would
/// move and the adjacent shard that would absorb it. Computed by
/// OwnershipTable::MergePlanFor so the ReshardingCoordinator and the
/// AutoBalancer agree on the survivor before the migration starts.
struct MergePlan {
  OwnedSlice slice;
  size_t survivor = 0;
};

/// Epoch-versioned key ownership across a fixed set of shard slots.
///
/// Epoch 1 is the seed Partitioner's mapping. A split installs epoch
/// N+1 in which the upper part of a source shard's slice belongs to a
/// destination slot; all earlier epochs stay queryable so stale-epoch
/// requests can be re-routed deterministically rather than failed.
///
/// Splittability: a split exports the moving keys as one
/// completeness-verified range scan, so ownership must be expressible as
/// contiguous key slices. Range-partitioned seeds (and any single-shard
/// seed, which owns the whole domain) qualify; a multi-shard hash seed
/// interleaves keys and stays frozen at epoch 1. Note the coordinator
/// additionally needs a range_span bounding the populated domain to
/// place a split point inside a slice that runs to kMaxKey.
///
/// `capacity` is the number of physical shard slots — fixed for the
/// table's life, which is what keeps router-scoped block ids (global =
/// inner * capacity + shard) stable across epochs.
///
/// Thread-safe: readers (router hot path, any worker thread under
/// ThreadedRuntime) take a shared lock; Install* (control thread)
/// takes it exclusively. Under the simulator everything is one thread
/// and the locks are uncontended.
class OwnershipTable {
 public:
  OwnershipTable(Partitioner seed, size_t capacity)
      : seed_(seed), capacity_(std::max(capacity, seed.shards())) {
    if (seed_.scheme() == ShardScheme::kRange || seed_.shards() == 1) {
      std::vector<OwnedSlice> initial;
      for (size_t s = 0; s < seed_.shards(); ++s) {
        const auto [lo, hi] = seed_.OwnedRange(s);
        initial.push_back({lo, hi, s});
      }
      history_.push_back(std::move(initial));
    }
    // Multi-shard hash seeds leave history_ empty: ownership is
    // interleaved, routing delegates to the seed function, epoch == 1
    // forever.
  }

  size_t capacity() const { return capacity_; }
  const Partitioner& seed() const { return seed_; }
  OwnershipEpoch epoch() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return EpochLocked();
  }
  bool splittable() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return !history_.empty();
  }

  /// The shard owning `key` under the current epoch.
  size_t ShardOf(Key key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return ShardOfLocked(key, EpochLocked());
  }

  /// The shard owning `key` under historical epoch `e` (clamped to
  /// [1, epoch()]) — the view a client that last synced at `e` routes by.
  size_t ShardOf(Key key, OwnershipEpoch e) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return ShardOfLocked(key, e);
  }

  /// The slices of the current epoch intersecting [lo, hi], clamped to
  /// the scan range — one verified sub-scan per returned slice. For a
  /// non-splittable (hash) table every shard owns an interleaved subset,
  /// so each shard contributes one full-range pseudo-slice.
  std::vector<OwnedSlice> SlicesTouching(Key lo, Key hi) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<OwnedSlice> out;
    if (history_.empty()) {
      for (size_t s = 0; s < seed_.shards(); ++s) out.push_back({lo, hi, s});
      return out;
    }
    for (const OwnedSlice& sl : history_.back()) {
      if (sl.lo <= hi && lo <= sl.hi) {
        out.push_back({std::max(lo, sl.lo), std::min(hi, sl.hi), sl.shard});
      }
    }
    return out;
  }

  /// All slices of epoch `e` (clamped), sorted by lo. Empty for
  /// non-splittable tables.
  std::vector<OwnedSlice> Slices(OwnershipEpoch e) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (history_.empty()) return {};
    return At(e);
  }

  /// The widest slice currently owned by `shard`; nullopt when the slot
  /// is idle (or the table is not splittable).
  std::optional<OwnedSlice> WidestSliceOf(size_t shard) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return WidestSliceLocked(shard);
  }

  /// The lowest shard slot owning nothing under the current epoch — the
  /// natural destination of the next split. nullopt when every slot is
  /// live (open with a larger ShardingConfig::capacity to keep spares).
  std::optional<size_t> FirstIdleShard() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (history_.empty()) return std::nullopt;
    std::vector<bool> live(capacity_, false);
    for (const OwnedSlice& sl : history_.back()) live[sl.shard] = true;
    for (size_t s = 0; s < capacity_; ++s) {
      if (!live[s]) return s;
    }
    return std::nullopt;
  }

  /// Shard slots owning at least one slice under the current epoch.
  size_t LiveShards() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (history_.empty()) return seed_.shards();
    std::vector<bool> live(capacity_, false);
    for (const OwnedSlice& sl : history_.back()) live[sl.shard] = true;
    return static_cast<size_t>(std::count(live.begin(), live.end(), true));
  }

  /// Fraction of the key domain each shard slot owns under the current
  /// epoch (sums to ~1). The domain is the seed's range_span when set —
  /// the last shard's tail to "infinity" counts as its slice inside the
  /// span, not the whole uint64 line. Hash tables split ownership evenly
  /// over the seed shards. Used to size per-shard verifier caches.
  std::vector<double> OwnedFractions() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<double> f(capacity_, 0.0);
    if (history_.empty()) {
      for (size_t s = 0; s < seed_.shards(); ++s) {
        f[s] = 1.0 / static_cast<double>(seed_.shards());
      }
      return f;
    }
    const Key domain_hi =
        seed_.range_span() > 0 ? seed_.range_span() - 1 : kMaxKey;
    const double domain = static_cast<double>(domain_hi) + 1.0;
    for (const OwnedSlice& sl : history_.back()) {
      if (sl.lo > domain_hi) continue;  // entirely in the empty tail
      const Key hi = std::min(sl.hi, domain_hi);
      f[sl.shard] +=
          (static_cast<double>(hi) - static_cast<double>(sl.lo) + 1.0) /
          domain;
    }
    return f;
  }

  /// The merge this table would install for `shard`: its widest slice
  /// moves to the owner of an adjacent slice (the left neighbour when
  /// both exist, so repeated merges walk deterministically). nullopt
  /// when the slot is idle, the table is not splittable, or the shard
  /// owns the whole domain (no neighbour to absorb it).
  std::optional<MergePlan> MergePlanFor(size_t shard) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (history_.empty()) return std::nullopt;
    const std::optional<OwnedSlice> slice = WidestSliceLocked(shard);
    if (!slice.has_value()) return std::nullopt;
    const std::vector<OwnedSlice>& cur = history_.back();
    for (size_t i = 0; i < cur.size(); ++i) {
      if (!(cur[i] == *slice)) continue;
      if (i > 0 && cur[i - 1].shard != shard) {
        return MergePlan{*slice, cur[i - 1].shard};
      }
      if (i + 1 < cur.size() && cur[i + 1].shard != shard) {
        return MergePlan{*slice, cur[i + 1].shard};
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  /// Installs epoch+1 in which the slice [lo, hi] owned by `source`
  /// moves whole to `survivor`, which must own an adjacent slice — the
  /// inverse of InstallSplit. Adjacent same-owner slices are coalesced,
  /// so a slot whose last slice merges away becomes idle again
  /// (FirstIdleShard returns it; split→merge cycles never exhaust the
  /// capacity). Returns the new epoch, or InvalidArgument /
  /// FailedPrecondition when the merge is not expressible (hash table,
  /// bad slots, [lo, hi] not exactly a source-owned slice, survivor not
  /// adjacent).
  Result<OwnershipEpoch> InstallMerge(size_t source, size_t survivor, Key lo,
                                      Key hi) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (history_.empty()) {
      return Status::FailedPrecondition(
          "ownership is hash-interleaved; merges need range partitioning");
    }
    if (source >= capacity_ || survivor >= capacity_ || source == survivor) {
      return Status::InvalidArgument("bad merge shard slots");
    }
    std::vector<OwnedSlice> next = history_.back();
    for (size_t i = 0; i < next.size(); ++i) {
      if (!(next[i] == OwnedSlice{lo, hi, source})) continue;
      const bool left_adjacent = i > 0 && next[i - 1].shard == survivor;
      const bool right_adjacent =
          i + 1 < next.size() && next[i + 1].shard == survivor;
      if (!left_adjacent && !right_adjacent) {
        return Status::FailedPrecondition(
            "survivor owns no slice adjacent to the merged range");
      }
      next[i].shard = survivor;
      // Coalesce adjacent same-owner slices so the map stays normalized
      // (one slice per maximal owned run; WidestSliceOf and MergePlanFor
      // rely on this).
      std::vector<OwnedSlice> coalesced;
      for (const OwnedSlice& sl : next) {
        if (!coalesced.empty() && coalesced.back().shard == sl.shard &&
            coalesced.back().hi + 1 == sl.lo) {
          coalesced.back().hi = sl.hi;
        } else {
          coalesced.push_back(sl);
        }
      }
      history_.push_back(std::move(coalesced));
      return EpochLocked();
    }
    return Status::InvalidArgument(
        "merge range is not exactly a slice owned by the source shard");
  }

  /// Installs epoch+1 in which [split_key, hi] of the source slice
  /// containing split_key moves to `dest` while [lo, split_key-1] stays
  /// with `source`. Returns the new epoch, or InvalidArgument /
  /// FailedPrecondition when the split is not expressible (hash table,
  /// bad slots, split_key outside a source-owned slice, empty half).
  Result<OwnershipEpoch> InstallSplit(size_t source, size_t dest,
                                      Key split_key) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (history_.empty()) {
      return Status::FailedPrecondition(
          "ownership is hash-interleaved; splits need range partitioning");
    }
    if (source >= capacity_ || dest >= capacity_ || source == dest) {
      return Status::InvalidArgument("bad split shard slots");
    }
    std::vector<OwnedSlice> next = history_.back();
    for (size_t i = 0; i < next.size(); ++i) {
      const OwnedSlice sl = next[i];
      if (sl.shard != source || split_key < sl.lo || split_key > sl.hi) {
        continue;
      }
      if (split_key == sl.lo) {
        return Status::InvalidArgument(
            "split would leave the source half empty");
      }
      next[i] = {sl.lo, split_key - 1, source};
      next.insert(next.begin() + static_cast<ptrdiff_t>(i) + 1,
                  {split_key, sl.hi, dest});
      history_.push_back(std::move(next));
      return EpochLocked();
    }
    return Status::InvalidArgument(
        "split_key is not inside a slice owned by the source shard");
  }

 private:
  OwnershipEpoch EpochLocked() const {
    return history_.empty() ? 1 : history_.size();
  }

  size_t ShardOfLocked(Key key, OwnershipEpoch e) const {
    if (history_.empty()) return seed_.ShardOf(key);
    return SliceContaining(At(e), key).shard;
  }

  std::optional<OwnedSlice> WidestSliceLocked(size_t shard) const {
    std::optional<OwnedSlice> best;
    if (history_.empty()) return best;
    for (const OwnedSlice& sl : history_.back()) {
      if (sl.shard != shard) continue;
      if (!best.has_value() || sl.hi - sl.lo > best->hi - best->lo) best = sl;
    }
    return best;
  }

  const std::vector<OwnedSlice>& At(OwnershipEpoch e) const {
    const size_t idx = e == 0 ? 0 : static_cast<size_t>(e - 1);
    return history_[std::min(idx, history_.size() - 1)];
  }

  static const OwnedSlice& SliceContaining(const std::vector<OwnedSlice>& m,
                                           Key key) {
    // Slices are sorted by lo and tile [0, kMaxKey]: binary search for
    // the last slice with lo <= key.
    size_t lo = 0, hi = m.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (m[mid].lo <= key) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return m[lo];
  }

  Partitioner seed_;
  size_t capacity_;
  mutable std::shared_mutex mu_;
  /// history_[e-1] = the slice map of epoch e, sorted by lo, tiling
  /// [0, kMaxKey]. Empty for non-splittable (multi-shard hash) tables.
  /// Guarded by mu_.
  std::vector<std::vector<OwnedSlice>> history_;
};

}  // namespace wedge
