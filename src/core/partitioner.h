// Partitioner: the key-ownership function of the sharding subsystem.
//
// A sharded deployment runs one LSMerkle tree (and log) per edge node;
// the partitioner decides, deterministically on both the routing layer
// and the workload generators, which shard owns a key. Two schemes:
//
//  - kHash: keys are mixed (splitmix64) and spread uniformly. Balanced
//    under any key distribution, but a range scan must fan out to every
//    shard.
//  - kRange: the key domain [0, range_span) is cut into contiguous
//    slices, one per shard (keys >= range_span belong to the last
//    shard). Scans touch only the shards whose slice intersects the
//    range.
//
// The same Partitioner instance is shared by the api-layer ShardRouter
// (routing + scan stitching), the deployments (client-to-edge pinning),
// and the workload key generators (partition-aware distributions), so
// ownership can never disagree across layers.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/types.h"
#include "lsmerkle/kv.h"

namespace wedge {

enum class ShardScheme : uint8_t {
  kHash = 0,
  kRange = 1,
};

inline const char* ShardSchemeToString(ShardScheme s) {
  return s == ShardScheme::kRange ? "range" : "hash";
}

/// Sharding knobs carried by DeploymentConfig / StoreOptions.
struct ShardingConfig {
  /// Number of key partitions. 0 = sharding off (legacy behaviour:
  /// clients round-robin over all edges, no routing layer). 1 = a single
  /// shard (all keys on edge 0). Must not exceed num_edges.
  size_t num_shards = 0;
  ShardScheme scheme = ShardScheme::kHash;
  /// kRange only: exclusive upper bound of the key domain that is cut
  /// into slices. Keys >= range_span map to the last shard.
  uint64_t range_span = 0;

  bool enabled() const { return num_shards >= 1; }
};

class Partitioner {
 public:
  /// A single-shard partitioner (everything maps to shard 0).
  Partitioner() : Partitioner(ShardScheme::kHash, 1, 0) {}

  Partitioner(ShardScheme scheme, size_t shards, uint64_t range_span = 0)
      : scheme_(scheme),
        shards_(shards == 0 ? 1 : shards),
        span_(range_span) {}

  explicit Partitioner(const ShardingConfig& cfg)
      : Partitioner(cfg.scheme, cfg.num_shards, cfg.range_span) {}

  static Partitioner Hash(size_t shards) {
    return Partitioner(ShardScheme::kHash, shards);
  }
  static Partitioner Range(size_t shards, uint64_t range_span) {
    return Partitioner(ShardScheme::kRange, shards, range_span);
  }

  size_t shards() const { return shards_; }
  ShardScheme scheme() const { return scheme_; }

  /// The shard that owns `key`. Total: every key has exactly one owner.
  size_t ShardOf(Key key) const {
    if (shards_ == 1) return 0;
    if (scheme_ == ShardScheme::kRange) {
      if (span_ == 0 || key >= span_) return shards_ - 1;
      return static_cast<size_t>(
          (static_cast<unsigned __int128>(key) * shards_) / span_);
    }
    // Multiply-shift over the mixed key: uniform over [0, shards).
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(Mix(key)) * shards_) >> 64);
  }

  /// The contiguous key interval [lo, hi] owned by shard `s` under the
  /// kRange scheme. For kHash every shard owns an interleaved subset, so
  /// the full key domain is returned (a scan must consult every shard).
  std::pair<Key, Key> OwnedRange(size_t s) const {
    if (scheme_ != ShardScheme::kRange || shards_ == 1 || span_ == 0) {
      return {kMinKey, kMaxKey};
    }
    const Key lo = Boundary(s);
    const Key hi = (s + 1 >= shards_) ? kMaxKey : Boundary(s + 1) - 1;
    return {lo, hi};
  }

  /// True when a scan of [lo, hi] must consult shard `s` — i.e. the
  /// shard's owned interval intersects the scan range.
  bool ScanTouches(size_t s, Key lo, Key hi) const {
    const auto owned = OwnedRange(s);
    return owned.first <= hi && lo <= owned.second;
  }

  /// Clamps a scan range to the part shard `s` can own. Only meaningful
  /// when ScanTouches(s, lo, hi).
  std::pair<Key, Key> ClampToShard(size_t s, Key lo, Key hi) const {
    const auto owned = OwnedRange(s);
    return {std::max(lo, owned.first), std::min(hi, owned.second)};
  }

 private:
  /// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// First key of shard `s` under kRange: the smallest k with
  /// k * shards / span == s, i.e. ceil(s * span / shards).
  Key Boundary(size_t s) const {
    const unsigned __int128 num =
        static_cast<unsigned __int128>(s) * span_ + (shards_ - 1);
    return static_cast<Key>(num / shards_);
  }

  ShardScheme scheme_;
  size_t shards_;
  uint64_t span_;
};

}  // namespace wedge
