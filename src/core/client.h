// WedgeClient: the authenticated client of WedgeChain (paper §III, §IV-D).
//
// The client signs every entry it proposes, tracks Phase I / Phase II
// commits per request, keeps the edge's signed responses as dispute
// evidence, verifies block-proofs and get-proofs, and escalates to the
// cloud when the edge lies or goes silent past the proof timeout.

#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "crypto/signature.h"
#include "lsmerkle/kv.h"
#include "lsmerkle/read_proof.h"
#include "lsmerkle/verifier_cache.h"
#include "runtime/runtime.h"
#include "simnet/cost_model.h"
#include "wire/message.h"
#include "wire/protocol.h"
#include "wire/session.h"

namespace wedge {

struct ClientStats {
  uint64_t phase1_commits = 0;
  uint64_t phase2_commits = 0;
  uint64_t reads_ok = 0;
  uint64_t gets_ok = 0;
  uint64_t scans_ok = 0;
  uint64_t proof_mismatches = 0;
  uint64_t disputes_sent = 0;
  uint64_t disputes_upheld = 0;
  uint64_t verification_failures = 0;
  uint64_t stale_rejected = 0;
  /// Responses anchored to an older certified epoch than one already
  /// observed (monotonic_snapshots session check, §V-D alternative).
  uint64_t snapshot_regressions = 0;

  /// Accumulates another client's counters — the aggregation a sharded
  /// deployment needs, where one logical client is backed by a physical
  /// client per shard.
  ClientStats& operator+=(const ClientStats& other);
};

class WedgeClient : public Endpoint {
 public:
  /// Called at Phase I commit: (status, block id, phase1 time).
  using Phase1Cb = std::function<void(const Status&, BlockId, SimTime)>;
  /// Called at Phase II commit (or on a detected lie / unresolved
  /// timeout): (status, block id, phase2 time).
  using Phase2Cb = std::function<void(const Status&, BlockId, SimTime)>;
  using ReadCb =
      std::function<void(const Status&, const Block&, bool phase2, SimTime)>;
  using GetCb = std::function<void(const Status&, const VerifiedGet&, SimTime)>;
  using ScanCb =
      std::function<void(const Status&, const VerifiedScan&, SimTime)>;

  WedgeClient(Executor* exec, Transport* net, const KeyStore* keystore,
              Signer signer, NodeId edge, NodeId cloud, Dc location,
              ClientConfig config, CostModel costs);

  void Start() { net_->Attach(id(), location_, this); }

  NodeId id() const { return signer_.id(); }

  /// Runs `fn` on this client's executor — the entry hop the synchronous
  /// facade uses so every operation starts on the client's serialized
  /// executor (inline under the simulator, posted under threads).
  void Invoke(std::function<void()> fn) { exec_->Post(std::move(fn)); }

  /// The edge node this client is pinned to — in a sharded deployment,
  /// the edge hosting this physical client's shard.
  NodeId edge() const { return edge_; }

  /// Appends a batch of raw log entries. Phase I on add-response, Phase II
  /// on block-proof.
  void AddBatch(std::vector<Bytes> payloads, Phase1Cb on_phase1 = nullptr,
                Phase2Cb on_phase2 = nullptr);

  /// Applies a batch of key-value puts through the LSMerkle path.
  void PutBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                Phase1Cb on_phase1 = nullptr, Phase2Cb on_phase2 = nullptr);

  /// Reserved add (§IV-E): first reserves a log position at the edge, then
  /// signs the entry for exactly that position and submits it. An entry
  /// replayed anywhere else is rejected by every verifier. Best-effort:
  /// if the slot was taken meanwhile, the add retries with a fresh
  /// reservation (up to 3 attempts).
  void AddReserved(Bytes payload, Phase1Cb on_phase1 = nullptr,
                   Phase2Cb on_phase2 = nullptr);

  /// Reads log block `bid`.
  void ReadBlock(BlockId bid, ReadCb cb);

  /// Gets `key` with proof verification.
  void Get(Key key, GetCb cb);

  /// Failure-aware fallback: gets `key` from the cloud's backup of this
  /// client's edge instead of the edge itself (used when the edge is
  /// crashed or partitioned away). The response carries the newest
  /// backed-up block containing the key plus a cloud certificate; the
  /// value is verified against the certified digest before delivery, so
  /// a hit is as trustworthy as an edge-served Phase II read. A miss is
  /// NOT a proof of absence — the backup may lag the edge. Requires the
  /// cloud to run with backup_blocks (and full bodies to reach it:
  /// edge ship_full_blocks or merge traffic).
  void GetFromCloud(Key key, GetCb cb);

  /// Scans [lo, hi] with completeness-proof verification: the verified
  /// result is rebuilt from evidence, so a truncated or tampered scan
  /// surfaces as a SecurityViolation, never as silently missing keys.
  void Scan(Key lo, Key hi, ScanCb cb);

  const ClientStats& stats() const { return stats_; }

  /// The verified-material cache (ClientConfig::verify_cache). Exposed
  /// for stats and tests.
  const VerifierCache& verifier_cache() const { return verifier_cache_; }

  /// Re-sizes the verifier cache; the sharded routing layer keeps cache
  /// budgets proportional to the key-span this client's shard owns.
  void ResizeVerifierCache(const VerifierCache::Limits& limits) {
    verifier_cache_.Resize(limits);
  }

  /// Drops cached proof material covering [lo, hi] — called when a
  /// resharding epoch migrates the range away from this client's edge.
  void InvalidateVerifierRange(Key lo, Key hi) {
    verifier_cache_.InvalidateRange(lo, hi);
  }

  /// The largest log size learned from cloud gossip (omission detection).
  uint64_t gossiped_log_size() const { return gossiped_log_size_; }

  void OnMessage(NodeId from, Slice payload, SimTime now) override;

 private:
  struct PendingWrite {
    SimTime sent_at = 0;
    /// Entries not yet seen in any responded block. A large request can
    /// span several blocks; Phase I completes when this empties.
    std::vector<std::pair<NodeId, SeqNum>> remaining_entries;
    Phase1Cb on_phase1;
    Phase2Cb on_phase2;
    bool phase1_done = false;
    BlockId first_bid = 0;
    /// Per involved block: the digest the edge promised, plus the signed
    /// response kept as dispute evidence. Phase II completes when every
    /// involved block's proof matched.
    std::map<BlockId, Digest256> block_digests;
    std::map<BlockId, Bytes> evidence;
  };
  struct PendingRead {
    SimTime sent_at = 0;
    BlockId bid = 0;
    ReadCb cb;
    bool phase1_done = false;
    Digest256 block_digest;
    Block block;
    Bytes evidence;
  };
  struct PendingGet {
    SimTime sent_at = 0;
    Key key = 0;
    GetCb cb;
  };
  struct PendingCloudGet {
    SimTime sent_at = 0;
    Key key = 0;
    /// The edge whose backup we asked about; the returned certificate
    /// must name it.
    NodeId edge = kInvalidNodeId;
    GetCb cb;
  };
  struct PendingScan {
    SimTime sent_at = 0;
    Key lo = 0;
    Key hi = 0;
    ScanCb cb;
  };
  struct PendingReserve {
    Bytes payload;
    Phase1Cb on_phase1;
    Phase2Cb on_phase2;
    int attempts_left = 3;
  };

  void SendWrite(MsgType type, std::vector<Entry> entries, Phase1Cb cb1,
                 Phase2Cb cb2);
  void HandleAddResponse(NodeId from, const Envelope& env, SimTime now);
  void HandleBlockProof(const BlockProof& proof, SimTime now);
  void HandleReadResponse(NodeId from, const Envelope& env, SimTime now);
  void HandleGetResponse(const Envelope& env, SimTime now);
  void HandleCloudGetResponse(const Envelope& env, SimTime now);
  void HandleScanResponse(const Envelope& env, SimTime now);
  void ArmProofTimeout(SeqNum req_id, BlockId bid);
  void RaiseDispute(DisputeKind kind, BlockId bid, Bytes evidence);

  void SendSealed(NodeId to, MsgType type, Bytes body);

  Executor* exec_;
  Transport* net_;
  const KeyStore* keystore_;
  Signer signer_;
  // Session channels (v2 envelopes). Initialized from signer_/keystore_;
  // counters are durable identity state, not volatile protocol state.
  SessionSealer sealer_;
  SessionOpener opener_;
  NodeId edge_;
  NodeId cloud_;
  Dc location_;
  ClientConfig config_;
  CostModel costs_;

  SeqNum next_req_id_ = 1;
  SeqNum next_entry_seq_ = 1;

  std::unordered_map<SeqNum, PendingWrite> pending_writes_;   // by req_id
  /// Writes awaiting a block's certification proof, by block id. A
  /// vector, not a single req: concurrent writes from this client
  /// (async surface) routinely share a block, and every one of them
  /// Phase-II-commits on that block's proof.
  std::unordered_map<BlockId, std::vector<SeqNum>> write_by_bid_;
  std::unordered_map<SeqNum, PendingRead> pending_reads_;     // by req_id
  std::unordered_map<BlockId, SeqNum> read_by_bid_;           // Phase I reads
  std::unordered_map<SeqNum, PendingGet> pending_gets_;
  std::unordered_map<SeqNum, PendingCloudGet> pending_cloud_gets_;
  std::unordered_map<SeqNum, PendingScan> pending_scans_;
  std::unordered_map<SeqNum, PendingReserve> pending_reserves_;

  /// Highest certified LSMerkle epoch observed in any verified get/scan
  /// (session state for the monotonic_snapshots check).
  Epoch last_snapshot_epoch_ = 0;

  /// Applies the session-consistency check to a verified response
  /// anchored at `epoch`; OK (and advances the watermark) unless the
  /// snapshot regressed.
  Status CheckSnapshotMonotonic(Epoch epoch);

  uint64_t gossiped_log_size_ = 0;
  ClientStats stats_;
  VerifierCache verifier_cache_;
};

}  // namespace wedge
