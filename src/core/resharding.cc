#include "core/resharding.h"

#include <mutex>
#include <string>
#include <utility>

namespace wedge {

ReshardingCoordinator::ReshardingCoordinator(
    Executor* exec, std::shared_ptr<OwnershipTable> table,
    ShardMigrationHost* host, ReshardingConfig config)
    : exec_(exec), table_(std::move(table)), host_(host), config_(config) {}

void ReshardingCoordinator::Abort(MigrationKind kind, const Status& why,
                                  SimTime now, const SplitCb& done) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (kind == MigrationKind::kMerge) {
      stats_.merges_failed++;
    } else {
      stats_.splits_failed++;
    }
  }
  in_flight_ = false;
  host_->LiftFence();  // parked writes flush to the unchanged owners
  if (done) done(why, MigrationReport{}, now);
}

void ReshardingCoordinator::RecordCertificate(uint64_t seq,
                                              const Status& status,
                                              SimTime at) {
  // Certification is per migration sequence: a certificate for an
  // aborted attempt finds no report; one for a superseded-but-applied
  // migration finalizes that migration's own report, not the latest.
  auto it = applied_.find(seq);
  if (it == applied_.end()) return;
  MigrationReport& report = it->second;
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!status.ok()) {
    // The epoch is live but the handoff's lazy trust chain did not
    // close — surface it, don't let it masquerade as "still pending".
    report.certify_failed = true;
    stats_.certify_failures++;
    return;
  }
  report.certified = true;
  report.certified_at = at;
  if (report.kind == MigrationKind::kMerge) {
    stats_.merges_certified++;
  } else {
    stats_.splits_certified++;
  }
}

void ReshardingCoordinator::RunMigration(
    MigrationKind kind, size_t source, size_t dest, Key lo, Key hi,
    std::function<Result<OwnershipEpoch>()> install, SplitCb done) {
  in_flight_ = true;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (kind == MigrationKind::kMerge) {
      stats_.merges_started++;
    } else {
      stats_.splits_started++;
    }
  }
  const uint64_t seq = ++split_seq_;

  // Crash-mid-migration watchdog: a source or destination that fails
  // mid-flight leaves the export scan or the import write hanging
  // forever. The deadline aborts exactly this attempt (`seq`-scoped, so
  // it can never fire into a later migration) and lifts the fence with
  // ownership unchanged. The stale completion callbacks it outraces are
  // neutralized by the same seq guard below.
  if (config_.migration_timeout > 0) {
    exec_->After(config_.migration_timeout, [this, kind, seq, done]() {
      if (!in_flight_ || split_seq_ != seq) return;
      Abort(kind,
            Status::Unavailable(
                "shard migration timed out after " +
                std::to_string(config_.migration_timeout) +
                "us (source or destination edge unresponsive); ownership "
                "unchanged"),
            exec_->Now(), done);
    });
  }

  // Step 2 onward, entered only once the quiesce-AND-drain gate opens.
  // Host callbacks may land on any worker thread under a real runtime,
  // so every continuation is re-posted onto the coordinator's executor:
  // coordinator state stays control-confined (the Posts are inline under
  // the simulator, preserving its exact schedule).
  auto do_export = [this, kind, source, dest, lo, hi, seq,
                    install = std::move(install), done]() {
    if (!in_flight_ || split_seq_ != seq) return;  // watchdog-aborted
    // Completeness-verified export. A lying source surfaces here as
    // SecurityViolation and aborts the migration.
    host_->ExportRange(
        source, lo, hi,
        [this, kind, source, dest, lo, hi, seq, install, done](
            const Status& st, std::vector<KvPair> pairs, SimTime t) mutable {
          exec_->Post([this, kind, source, dest, lo, hi, seq, install, done,
                       st, pairs = std::move(pairs), t]() mutable {
          if (!in_flight_ || split_seq_ != seq) return;  // watchdog-aborted
          if (!st.ok()) return Abort(kind, st, t, done);

          // Step 4: the destination's Phase I commit is the handoff
          // point — install the new epoch, fix up caches, release the
          // parked writes to their new owner. `certified_now` covers the
          // data-free handoff (empty export): with nothing to certify,
          // the returned report is already final.
          auto finish = [this, kind, source, dest, lo, hi, seq, install, done,
                         moved = pairs.size()](const Status& st2, SimTime t2,
                                               bool certified_now) {
            if (!in_flight_ || split_seq_ != seq) return;  // watchdog-aborted
            if (!st2.ok()) return Abort(kind, st2, t2, done);
            Result<OwnershipEpoch> e = install();
            if (!e.ok()) return Abort(kind, e.status(), t2, done);
            MigrationReport report;
            report.kind = kind;
            report.epoch = *e;
            report.source = source;
            report.dest = dest;
            report.moved_lo = lo;
            report.moved_hi = hi;
            report.pairs_moved = moved;
            report.applied_at = t2;
            {
              std::lock_guard<std::mutex> lock(stats_mu_);
              if (kind == MigrationKind::kMerge) {
                stats_.merges_applied++;
              } else {
                stats_.splits_applied++;
              }
              stats_.pairs_migrated += moved;
            }
            MigrationReport& slot = applied_[seq];
            slot = report;
            // Keep the history a window: drop the oldest finalized
            // reports past the cap (pending certificates stay).
            for (auto it = applied_.begin();
                 applied_.size() > kMaxAppliedReports &&
                 it != applied_.end();) {
              if (it->first != seq &&
                  (it->second.certified || it->second.certify_failed)) {
                it = applied_.erase(it);
              } else {
                ++it;
              }
            }
            if (certified_now) RecordCertificate(seq, Status::OK(), t2);
            host_->OnEpochInstalled(slot);
            host_->LiftFence();
            in_flight_ = false;
            if (done) done(Status::OK(), slot, t2);
          };

          if (pairs.empty()) {
            finish(Status::OK(), t, /*certified_now=*/true);
            return;
          }

          // Step 3/5: import through the destination's normal write
          // path. Phase I drives the handoff; Phase II is the lazy
          // handoff certificate, recorded against this migration's own
          // sequence.
          host_->ImportPairs(
              dest, std::move(pairs),
              [this, finish](const Status& st2, SimTime t2) {
                exec_->Post([finish, st2, t2]() {
                  finish(st2, t2, /*certified_now=*/false);
                });
              },
              [this, seq](const Status& st3, SimTime t3) {
                exec_->Post(
                    [this, seq, st3, t3]() { RecordCertificate(seq, st3, t3); });
              });
          });
        });
  };

  // Step 1: fence the moving range. The export starts only once BOTH
  // gates open: the routing layer reports source quiescence (every
  // pre-fence write Phase-I-committed) and the drain settle window has
  // elapsed (covers writes buffered below the routing layer). Both arms
  // run on the coordinator's executor, so the countdown needs no lock,
  // and the seq guard in do_export neutralizes a watchdog abort that
  // fires in between.
  auto gate = std::make_shared<int>(2);
  auto proceed = [gate, do_export = std::move(do_export)]() {
    if (--*gate > 0) return;
    do_export();
  };
  host_->FenceRange(source, lo, hi,
                    [this, proceed]() { exec_->Post(proceed); });
  exec_->After(config_.drain_delay, proceed);
}

void ReshardingCoordinator::SplitShard(size_t source, SplitCb done) {
  const SimTime now = exec_->Now();
  // Pre-flight rejections: no migration started, so splits_failed (which
  // counts migrations aborted mid-flight) stays untouched.
  auto fail = [&](Status s) {
    if (done) done(std::move(s), MigrationReport{}, now);
  };
  if (in_flight_) {
    return fail(Status::FailedPrecondition("a shard migration is in flight"));
  }
  if (!table_->splittable()) {
    return fail(Status::FailedPrecondition(
        "ownership is hash-interleaved; SplitShard needs range "
        "partitioning (ShardScheme::kRange or a single seed shard)"));
  }
  if (source >= table_->capacity()) {
    return fail(Status::InvalidArgument("no shard slot " +
                                        std::to_string(source)));
  }
  const std::optional<OwnedSlice> slice = table_->WidestSliceOf(source);
  if (!slice.has_value() || slice->lo >= slice->hi) {
    return fail(Status::FailedPrecondition(
        "shard " + std::to_string(source) + " owns no splittable range"));
  }
  const std::optional<size_t> idle = table_->FirstIdleShard();
  if (!idle.has_value()) {
    return fail(Status::FailedPrecondition(
        "no idle shard slot to migrate into; open with "
        "StoreOptions::WithShardCapacity (or MergeShards a cooled "
        "shard to reclaim its slot)"));
  }
  const size_t dest = *idle;

  // Midpoint of the populated part of the slice. The last range shard
  // owns a tail running to kMaxKey ("the last page has a max of
  // infinity"); splitting at the raw midpoint of that tail would move an
  // empty astronomic range, so the split point is computed over the
  // configured key domain instead. Without a range_span bounding the
  // domain (e.g. a single hash shard on spare capacity) there is no
  // sane split point at all — refuse rather than install a no-op split.
  Key eff_hi = slice->hi;
  const uint64_t span = table_->seed().range_span();
  if (eff_hi == kMaxKey && span > slice->lo + 1) eff_hi = span - 1;
  if (eff_hi == kMaxKey) {
    return fail(Status::FailedPrecondition(
        "shard " + std::to_string(source) +
        " owns an unbounded slice; open with a range_span (e.g. "
        "WithShards(n, ShardScheme::kRange, span)) so the split point "
        "falls inside the populated key domain"));
  }
  const Key split_key = slice->lo + (eff_hi - slice->lo) / 2 + 1;

  RunMigration(
      MigrationKind::kSplit, source, dest, split_key, slice->hi,
      [table = table_, source, dest, split_key]() {
        return table->InstallSplit(source, dest, split_key);
      },
      std::move(done));
}

void ReshardingCoordinator::MergeShards(size_t source, SplitCb done) {
  const SimTime now = exec_->Now();
  auto fail = [&](Status s) {
    if (done) done(std::move(s), MigrationReport{}, now);
  };
  if (in_flight_) {
    return fail(Status::FailedPrecondition("a shard migration is in flight"));
  }
  if (!table_->splittable()) {
    return fail(Status::FailedPrecondition(
        "ownership is hash-interleaved; MergeShards needs range "
        "partitioning (ShardScheme::kRange or a single seed shard)"));
  }
  if (source >= table_->capacity()) {
    return fail(Status::InvalidArgument("no shard slot " +
                                        std::to_string(source)));
  }
  const std::optional<MergePlan> plan = table_->MergePlanFor(source);
  if (!plan.has_value()) {
    return fail(Status::FailedPrecondition(
        "shard " + std::to_string(source) +
        " owns no mergeable slice (idle slot, or no adjacent neighbour "
        "to absorb it)"));
  }

  RunMigration(
      MigrationKind::kMerge, source, plan->survivor, plan->slice.lo,
      plan->slice.hi,
      [table = table_, source, plan]() {
        return table->InstallMerge(source, plan->survivor, plan->slice.lo,
                                   plan->slice.hi);
      },
      std::move(done));
}

}  // namespace wedge
