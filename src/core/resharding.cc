#include "core/resharding.h"

#include <string>
#include <utility>

namespace wedge {

ReshardingCoordinator::ReshardingCoordinator(
    Simulation* sim, std::shared_ptr<OwnershipTable> table,
    ShardMigrationHost* host, ReshardingConfig config)
    : sim_(sim), table_(std::move(table)), host_(host), config_(config) {}

void ReshardingCoordinator::Abort(const Status& why, SimTime now,
                                  const SplitCb& done) {
  stats_.splits_failed++;
  in_flight_ = false;
  host_->LiftFence();  // parked writes flush to the unchanged owners
  if (done) done(why, SplitReport{}, now);
}

void ReshardingCoordinator::SplitShard(size_t source, SplitCb done) {
  const SimTime now = sim_->now();
  // Pre-flight rejections: no migration started, so splits_failed (which
  // counts migrations aborted mid-flight) stays untouched.
  auto fail = [&](Status s) {
    if (done) done(std::move(s), SplitReport{}, now);
  };
  if (in_flight_) {
    return fail(Status::FailedPrecondition("a shard migration is in flight"));
  }
  if (!table_->splittable()) {
    return fail(Status::FailedPrecondition(
        "ownership is hash-interleaved; SplitShard needs range "
        "partitioning (ShardScheme::kRange or a single seed shard)"));
  }
  if (source >= table_->capacity()) {
    return fail(Status::InvalidArgument("no shard slot " +
                                        std::to_string(source)));
  }
  const std::optional<OwnedSlice> slice = table_->WidestSliceOf(source);
  if (!slice.has_value() || slice->lo >= slice->hi) {
    return fail(Status::FailedPrecondition(
        "shard " + std::to_string(source) + " owns no splittable range"));
  }
  const std::optional<size_t> idle = table_->FirstIdleShard();
  if (!idle.has_value()) {
    return fail(Status::FailedPrecondition(
        "no idle shard slot to migrate into; open with "
        "StoreOptions::WithShardCapacity"));
  }
  const size_t dest = *idle;

  // Midpoint of the populated part of the slice. The last range shard
  // owns a tail running to kMaxKey ("the last page has a max of
  // infinity"); splitting at the raw midpoint of that tail would move an
  // empty astronomic range, so the split point is computed over the
  // configured key domain instead. Without a range_span bounding the
  // domain (e.g. a single hash shard on spare capacity) there is no
  // sane split point at all — refuse rather than install a no-op split.
  Key eff_hi = slice->hi;
  const uint64_t span = table_->seed().range_span();
  if (eff_hi == kMaxKey && span > slice->lo + 1) eff_hi = span - 1;
  if (eff_hi == kMaxKey) {
    return fail(Status::FailedPrecondition(
        "shard " + std::to_string(source) +
        " owns an unbounded slice; open with a range_span (e.g. "
        "WithShards(n, ShardScheme::kRange, span)) so the split point "
        "falls inside the populated key domain"));
  }
  const Key split_key = slice->lo + (eff_hi - slice->lo) / 2 + 1;

  in_flight_ = true;
  stats_.splits_started++;
  const uint64_t seq = ++split_seq_;

  // Step 1: fence the moving range, then let in-flight writes drain into
  // the source tree before the export snapshot.
  host_->FenceRange(split_key, slice->hi);
  sim_->ScheduleAfter(config_.drain_delay, [this, source, dest, split_key,
                                            hi = slice->hi, seq, done]() {
    // Step 2: completeness-verified export. A lying source surfaces
    // here as SecurityViolation and aborts the split.
    host_->ExportRange(
        source, split_key, hi,
        [this, source, dest, split_key, hi, seq, done](
            const Status& st, std::vector<KvPair> pairs, SimTime t) {
          if (!st.ok()) return Abort(st, t, done);

          // Step 4: the destination's Phase I commit is the handoff
          // point — install the new epoch, fix up caches, release the
          // parked writes to their new owner. `certified_now` covers the
          // data-free handoff (empty export): with nothing to certify,
          // the returned report is already final.
          auto finish = [this, source, dest, split_key, hi, seq, done,
                         moved = pairs.size()](const Status& st2, SimTime t2,
                                               bool certified_now) {
            if (!st2.ok()) return Abort(st2, t2, done);
            Result<OwnershipEpoch> e =
                table_->InstallSplit(source, dest, split_key);
            if (!e.ok()) return Abort(e.status(), t2, done);
            last_split_ = SplitReport{};
            last_split_.epoch = *e;
            last_split_.source = source;
            last_split_.dest = dest;
            last_split_.moved_lo = split_key;
            last_split_.moved_hi = hi;
            last_split_.pairs_moved = moved;
            last_split_.applied_at = t2;
            applied_seq_ = seq;
            stats_.splits_applied++;
            stats_.pairs_migrated += moved;
            if (certified_now) {
              last_split_.certified = true;
              last_split_.certified_at = t2;
              stats_.splits_certified++;
            }
            host_->OnEpochInstalled(last_split_);
            host_->LiftFence();
            in_flight_ = false;
            if (done) done(Status::OK(), last_split_, t2);
          };

          if (pairs.empty()) {
            finish(Status::OK(), t, /*certified_now=*/true);
            return;
          }

          // Step 3/5: import through the destination's normal write
          // path. Phase I drives the handoff; Phase II is the lazy
          // handoff certificate.
          host_->ImportPairs(
              dest, std::move(pairs),
              [finish](const Status& st2, SimTime t2) {
                finish(st2, t2, /*certified_now=*/false);
              },
              [this, seq](const Status& st3, SimTime t3) {
                if (seq != applied_seq_) return;
                if (!st3.ok()) {
                  // The epoch is live but the handoff's lazy trust
                  // chain did not close — surface it, don't let it
                  // masquerade as "still pending".
                  last_split_.certify_failed = true;
                  stats_.certify_failures++;
                  return;
                }
                last_split_.certified = true;
                last_split_.certified_at = t3;
                stats_.splits_certified++;
              });
        });
  });
}

}  // namespace wedge
