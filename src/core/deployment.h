// Deployment: wires a complete WedgeChain topology on a runtime —
// keystore, trust authority, transport, one cloud, one edge (the paper
// reports single-partition results, §VI), and N clients. The runtime is
// the deterministic simulator by default; DeploymentConfig::runtime
// selects ThreadedRuntime for real-thread execution (edges and the
// cloud each get a dedicated worker thread, clients share the driver
// pool).
//
// Used by integration tests, benchmarks, and examples — usually through
// the wedge::Store façade (api/store.h), which owns a Deployment when
// opened with BackendKind::kWedge.

#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/cloud_node.h"
#include "core/config.h"
#include "core/edge_node.h"
#include "core/partitioner.h"
#include "core/topology.h"
#include "core/trust_authority.h"
#include "runtime/runtime.h"
#include "simnet/cost_model.h"
#include "simnet/network.h"

namespace wedge {

struct DeploymentConfig {
  uint64_t seed = 1;
  NetworkConfig net;
  /// Which runtime to wire the deployment onto (sim by default).
  RuntimeConfig runtime;
  CostModel costs;
  Dc client_dc = Dc::kCalifornia;
  Dc edge_dc = Dc::kCalifornia;
  Dc cloud_dc = Dc::kVirginia;
  size_t num_clients = 1;
  /// Edge nodes (= data partitions, §III). Without sharding, clients are
  /// assigned round-robin: client i talks to edge i % num_edges. With
  /// sharding on (sharding.num_shards >= 1), shard slot s lives on edge
  /// s and client i talks to edge i % sharding.slots() — the layout the
  /// api-layer ShardRouter builds its (logical client, shard) ->
  /// physical client grid on. Slots beyond num_shards start idle and
  /// become live when a SplitShard migrates a key range onto them.
  size_t num_edges = 1;
  /// Key partitioning across edges (core/partitioner.h). num_shards == 0
  /// keeps the legacy unsharded wiring.
  ShardingConfig sharding;
  EdgeConfig edge;
  CloudConfig cloud;
  ClientConfig client;

  /// The edge index client `i` is pinned to under this config, given
  /// `edge_count` constructed edges.
  size_t HomeEdgeIndex(size_t i, size_t edge_count) const {
    const size_t span = sharding.enabled()
                            ? std::min(sharding.slots(), edge_count)
                            : edge_count;
    return span == 0 ? 0 : i % span;
  }
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config)
      : config_(config), topo_(config.seed, config.net, config.runtime),
        authority_(&topo_.keystore()) {
    Runtime& rt = topo_.runtime();
    Signer cloud_signer = topo_.RegisterCloud();
    Executor* cloud_exec =
        rt.ExecutorFor(cloud_signer.id(), ExecRole::kDedicated);
    cloud_ = std::make_unique<CloudNode>(
        cloud_exec, &topo_.transport(), &topo_.keystore(), &authority_,
        std::move(cloud_signer), config.cloud_dc, config.cloud, config.costs);

    const size_t num_edges = config.num_edges == 0 ? 1 : config.num_edges;
    for (size_t e = 0; e < num_edges; ++e) {
      Signer s = topo_.RegisterEdge(e);
      Executor* exec = rt.ExecutorFor(s.id(), ExecRole::kDedicated);
      edges_.push_back(std::make_unique<EdgeNode>(
          exec, &topo_.transport(), &topo_.keystore(), std::move(s),
          cloud_->id(), config.edge_dc, config.edge, config.costs));
    }

    topo_.MakeShardedClients(
        config.num_clients, config.sharding.slots(),
        [&](Signer s, size_t i) {
          // Each client belongs to one partition/edge (§III).
          EdgeNode* home = edges_[config.HomeEdgeIndex(i, edges_.size())].get();
          Executor* exec = rt.ExecutorFor(s.id(), ExecRole::kPooled);
          clients_.push_back(std::make_unique<WedgeClient>(
              exec, &topo_.transport(), &topo_.keystore(), std::move(s),
              home->id(), cloud_->id(), config.client_dc, config.client,
              config.costs));
        });
  }

  /// Worker threads must stop before the nodes they reference are
  /// destroyed (members below are destroyed in reverse declaration
  /// order, i.e. nodes before topo_).
  ~Deployment() { topo_.runtime().Shutdown(); }

  /// Attaches every node to the network and starts timers/gossip.
  void Start() {
    cloud_->Start();
    for (auto& e : edges_) e->Start();
    for (size_t i = 0; i < clients_.size(); ++i) {
      clients_[i]->Start();
      cloud_->SubscribeGossip(
          clients_[i]->id(),
          edges_[config_.HomeEdgeIndex(i, edges_.size())]->id());
    }
  }

  /// Fail-stop crash of edge `i`: the fault plane cuts it off from the
  /// network (both directions) and its volatile state — log, LSMerkle
  /// tree, buffers, replay watermarks — is wiped on the node's own
  /// executor, like a power loss. The node object stays constructed;
  /// RecoverEdge brings it back.
  void CrashEdge(size_t i) {
    EdgeNode* e = edges_.at(i).get();
    topo_.runtime().faults().CrashNode(e->id());
    topo_.runtime().ExecutorFor(e->id(), ExecRole::kDedicated)->Post([e] {
      e->DropVolatileState();
    });
  }

  /// Reconnects a crashed edge and starts verified re-hydration: the
  /// edge replays the cloud's backup log (RequestBackupSync), checking
  /// every restored block against the cloud's certificate. Complete
  /// replay needs the cloud to hold full bodies (cloud.backup_blocks
  /// plus edge.ship_full_blocks, or blocks seen through merges); the
  /// replay rebuilds L0 only, so an edge with completed merges must
  /// restore its levels from durable storage instead.
  void RecoverEdge(size_t i) {
    EdgeNode* e = edges_.at(i).get();
    topo_.runtime().faults().RestartNode(e->id());
    topo_.runtime().ExecutorFor(e->id(), ExecRole::kDedicated)->Post([e] {
      e->RequestBackupSync();
    });
  }

  Runtime& runtime() { return topo_.runtime(); }
  Transport& transport() { return topo_.transport(); }
  /// Sim-only; aborts under ThreadedRuntime (see Topology).
  Simulation& sim() { return topo_.sim(); }
  SimNetwork& net() { return topo_.net(); }
  KeyStore& keystore() { return topo_.keystore(); }
  TrustAuthority& authority() { return authority_; }
  CloudNode& cloud() { return *cloud_; }
  EdgeNode& edge(size_t i = 0) { return *edges_.at(i); }
  size_t edge_count() const { return edges_.size(); }
  WedgeClient& client(size_t i = 0) { return *clients_.at(i); }
  size_t client_count() const { return clients_.size(); }
  const DeploymentConfig& config() const { return config_; }

 private:
  DeploymentConfig config_;
  Topology topo_;
  TrustAuthority authority_;
  std::unique_ptr<CloudNode> cloud_;
  std::vector<std::unique_ptr<EdgeNode>> edges_;
  std::vector<std::unique_ptr<WedgeClient>> clients_;
};

}  // namespace wedge
