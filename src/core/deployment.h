// Deployment: wires a complete WedgeChain topology on the simulator —
// keystore, trust authority, network, one cloud, one edge (the paper
// reports single-partition results, §VI), and N clients.
//
// Used by integration tests, benchmarks, and examples.

#pragma once

#include <memory>
#include <vector>

#include "core/client.h"
#include "core/cloud_node.h"
#include "core/config.h"
#include "core/edge_node.h"
#include "core/trust_authority.h"
#include "simnet/cost_model.h"
#include "simnet/network.h"
#include "simnet/simulation.h"

namespace wedge {

struct DeploymentConfig {
  uint64_t seed = 1;
  NetworkConfig net;
  CostModel costs;
  Dc client_dc = Dc::kCalifornia;
  Dc edge_dc = Dc::kCalifornia;
  Dc cloud_dc = Dc::kVirginia;
  size_t num_clients = 1;
  /// Edge nodes (= data partitions, §III). Clients are assigned
  /// round-robin: client i talks to edge i % num_edges.
  size_t num_edges = 1;
  EdgeConfig edge;
  CloudConfig cloud;
  ClientConfig client;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config)
      : config_(config), sim_(config.seed), keystore_(config.seed ^ 0x9e77),
        authority_(&keystore_) {
    net_ = std::make_unique<SimNetwork>(&sim_, config.net);

    Signer cloud_signer = keystore_.Register(Role::kCloud, "cloud");
    cloud_ = std::make_unique<CloudNode>(&sim_, net_.get(), &keystore_,
                                         &authority_, cloud_signer,
                                         config.cloud_dc, config.cloud,
                                         config.costs);

    const size_t num_edges = config.num_edges == 0 ? 1 : config.num_edges;
    for (size_t e = 0; e < num_edges; ++e) {
      Signer edge_signer =
          keystore_.Register(Role::kEdge, "edge-" + std::to_string(e));
      edges_.push_back(std::make_unique<EdgeNode>(
          &sim_, net_.get(), &keystore_, edge_signer, cloud_->id(),
          config.edge_dc, config.edge, config.costs));
    }

    for (size_t i = 0; i < config.num_clients; ++i) {
      Signer s = keystore_.Register(Role::kClient,
                                    "client-" + std::to_string(i));
      // Each client belongs to one partition/edge (§III).
      EdgeNode* home = edges_[i % edges_.size()].get();
      clients_.push_back(std::make_unique<WedgeClient>(
          &sim_, net_.get(), &keystore_, s, home->id(), cloud_->id(),
          config.client_dc, config.client, config.costs));
    }
  }

  /// Attaches every node to the network and starts timers/gossip.
  void Start() {
    cloud_->Start();
    for (auto& e : edges_) e->Start();
    for (size_t i = 0; i < clients_.size(); ++i) {
      clients_[i]->Start();
      cloud_->SubscribeGossip(clients_[i]->id(),
                              edges_[i % edges_.size()]->id());
    }
  }

  Simulation& sim() { return sim_; }
  SimNetwork& net() { return *net_; }
  KeyStore& keystore() { return keystore_; }
  TrustAuthority& authority() { return authority_; }
  CloudNode& cloud() { return *cloud_; }
  EdgeNode& edge(size_t i = 0) { return *edges_.at(i); }
  size_t edge_count() const { return edges_.size(); }
  WedgeClient& client(size_t i = 0) { return *clients_.at(i); }
  size_t client_count() const { return clients_.size(); }
  const DeploymentConfig& config() const { return config_; }

 private:
  DeploymentConfig config_;
  Simulation sim_;
  KeyStore keystore_;
  TrustAuthority authority_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<CloudNode> cloud_;
  std::vector<std::unique_ptr<EdgeNode>> edges_;
  std::vector<std::unique_ptr<WedgeClient>> clients_;
};

}  // namespace wedge
