// ReshardingCoordinator: verified live migration of a key range between
// shard slots (the dynamic-resharding extension of the sharding
// subsystem; the paper's lazy-trust principle, §IV, applied to shard
// handoff the way TransEdge routes verified reads across untrusted
// edges without blocking on the cloud).
//
// SplitShard(source) runs a five-step state machine over virtual time:
//
//   1. fence    — new writes into the moving range are parked at the
//                 routing layer (reads keep flowing to the source).
//   2. drain    — wait ReshardingConfig::drain_delay so writes already
//                 in flight reach the source's tree.
//   3. export   — the source edge serves the moving range as one
//                 completeness-verified scan. A lying source (truncated
//                 or tampered export) surfaces here as SecurityViolation
//                 and aborts the split — never as silently dropped keys.
//   4. import   — the destination edge applies the exported pairs
//                 through its normal write path; its Phase I commit is
//                 the handoff point: the new ownership epoch installs,
//                 parked writes flush to the new owner, and reads on
//                 migrated keys serve immediately (Phase-I-style).
//   5. certify  — the cloud certifies the imported blocks lazily; the
//                 handoff finalizes when that certificate lands
//                 (SplitReport::certified), off the critical path.
//
// The coordinator is transport-agnostic: it drives a ShardMigrationHost
// (implemented by the api-layer ShardRouter) and mutates the shared
// OwnershipTable; it never talks to nodes directly.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/partitioner.h"
#include "lsmerkle/kv.h"
#include "simnet/simulation.h"

namespace wedge {

struct ReshardingConfig {
  /// Virtual time between fencing the moving range and the export scan,
  /// so writes already routed to the source (in-network, or buffered at
  /// the edge awaiting a partial flush) land in its tree before the
  /// export snapshot. Must comfortably exceed client-edge latency plus
  /// EdgeConfig::partial_flush_delay — Store::Open enforces a floor of
  /// 2x the partial-flush delay on sharded stores; wide-area
  /// client-to-edge topologies need correspondingly more.
  SimTime drain_delay = 500 * kMillisecond;
};

/// Outcome of one SplitShard: what moved where, and when each trust
/// level was reached.
struct SplitReport {
  /// Ownership epoch the split installed.
  OwnershipEpoch epoch = 0;
  size_t source = 0;
  size_t dest = 0;
  /// The migrated key range [moved_lo, moved_hi] (now owned by dest).
  Key moved_lo = 0;
  Key moved_hi = 0;
  /// Pairs exported from the source and applied at the destination.
  size_t pairs_moved = 0;
  /// When the new epoch went live (destination Phase I commit): reads on
  /// migrated keys serve from here on.
  SimTime applied_at = 0;
  /// When the cloud's lazy handoff certificate landed (destination
  /// Phase II). 0 / false until then.
  SimTime certified_at = 0;
  bool certified = false;
  /// True when the lazy certification *failed* after the epoch went
  /// live (a certified=false report is "failed", not "still pending",
  /// once this is set) — the migrated range's trust chain needs
  /// attention.
  bool certify_failed = false;
};

/// The data-plane and routing hooks the coordinator drives; implemented
/// by the api-layer ShardRouter. All calls are asynchronous over the
/// simulation.
class ShardMigrationHost {
 public:
  using ExportCb =
      std::function<void(const Status&, std::vector<KvPair>, SimTime)>;
  using PhaseCb = std::function<void(const Status&, SimTime)>;

  virtual ~ShardMigrationHost() = default;

  /// Completeness-verified scan of [lo, hi] against `shard`'s edge. A
  /// tampering or truncating source must fail as SecurityViolation.
  virtual void ExportRange(size_t shard, Key lo, Key hi, ExportCb cb) = 0;

  /// Applies `pairs` to `shard`'s tree through its normal write path:
  /// `applied` at Phase I (the handoff point), `certified` at Phase II
  /// (the lazy handoff certificate).
  virtual void ImportPairs(size_t shard, std::vector<KvPair> pairs,
                           PhaseCb applied, PhaseCb certified) = 0;

  /// Parks new writes whose keys fall in [lo, hi]; reads keep flowing.
  virtual void FenceRange(Key lo, Key hi) = 0;

  /// Releases the fence and flushes parked writes, re-routed under the
  /// then-current ownership epoch.
  virtual void LiftFence() = 0;

  /// Runs right after the new epoch installs, fence still up: the host
  /// invalidates per-client verifier-cache entries covering the moved
  /// range and re-sizes per-shard caches to the new ownership.
  virtual void OnEpochInstalled(const SplitReport& report) = 0;
};

class ReshardingCoordinator {
 public:
  /// (status, report, time). On failure the report is the default object
  /// and ownership is unchanged.
  using SplitCb =
      std::function<void(const Status&, const SplitReport&, SimTime)>;

  struct Stats {
    /// Migrations that actually started (passed pre-flight checks and
    /// fenced the moving range): started = applied + failed + in flight.
    /// Requests rejected up front count nowhere.
    uint64_t splits_started = 0;
    /// Splits whose epoch installed (handoff live at Phase I).
    uint64_t splits_applied = 0;
    /// Splits whose lazy handoff certificate landed (Phase II).
    uint64_t splits_certified = 0;
    /// Applied splits whose lazy certification later FAILED (the epoch
    /// is live but the handoff's trust chain did not close).
    uint64_t certify_failures = 0;
    /// Migrations aborted mid-flight (lying source, failed import).
    uint64_t splits_failed = 0;
    uint64_t pairs_migrated = 0;
  };

  ReshardingCoordinator(Simulation* sim,
                        std::shared_ptr<OwnershipTable> table,
                        ShardMigrationHost* host, ReshardingConfig config = {});

  /// Splits `source`'s widest slice at its midpoint, migrating the upper
  /// half to the first idle shard slot. Exactly one migration runs at a
  /// time; `done` fires when the new epoch is live (or on the failure
  /// that aborted the split, with ownership unchanged).
  void SplitShard(size_t source, SplitCb done);

  bool migration_in_flight() const { return in_flight_; }
  const Stats& stats() const { return stats_; }
  /// The most recent applied split (certified flips asynchronously when
  /// the handoff certificate lands). Default object before the first.
  const SplitReport& last_split() const { return last_split_; }

 private:
  void Abort(const Status& why, SimTime now, const SplitCb& done);

  Simulation* sim_;
  std::shared_ptr<OwnershipTable> table_;
  ShardMigrationHost* host_;
  ReshardingConfig config_;

  bool in_flight_ = false;
  /// Monotonic id per SplitShard attempt, and the id of the attempt that
  /// produced last_split_ — so a certify callback from an aborted or
  /// superseded attempt cannot mark the wrong split certified.
  uint64_t split_seq_ = 0;
  uint64_t applied_seq_ = 0;
  SplitReport last_split_;
  Stats stats_;
};

}  // namespace wedge
