// ReshardingCoordinator: verified live migration of a key range between
// shard slots (the dynamic-resharding extension of the sharding
// subsystem; the paper's lazy-trust principle, §IV, applied to shard
// handoff the way TransEdge routes verified reads across untrusted
// edges without blocking on the cloud).
//
// Both directions of the shard lifecycle run the same five-step state
// machine — runtime-agnostic, so the split→merge→re-split cycle behaves
// identically on the simulator, real threads, and socket deployments —
// SplitShard(source) carves a hot shard's range onto an idle slot,
// MergeShards(source) folds a cooled shard's slice back into its
// adjacent neighbour (freeing the slot for the next split):
//
//   1. fence    — new writes into the moving range are parked at the
//                 routing layer (reads keep flowing to the source).
//   2. drain    — wait for explicit quiescence: every write routed to
//                 the source before the fence has reached its Phase-I
//                 commit (per-shard in-flight gauges at the routing
//                 layer, acked through FenceRange's callback), AND the
//                 ReshardingConfig::drain_delay settle window has
//                 elapsed. The gauge makes the gate exact on any
//                 runtime; the timer keeps a floor for writes buffered
//                 below the routing layer (partial-flush queues).
//   3. export   — the source edge serves the moving range as one
//                 completeness-verified scan. A lying source (truncated
//                 or tampered export) surfaces here as SecurityViolation
//                 and aborts the migration — never as silently dropped
//                 keys.
//   4. import   — the destination edge (the idle slot on a split, the
//                 surviving neighbour on a merge) applies the exported
//                 pairs through its normal write path; its Phase I
//                 commit is the handoff point: the new ownership epoch
//                 installs, parked writes flush to the new owner, and
//                 reads on migrated keys serve immediately
//                 (Phase-I-style).
//   5. certify  — the cloud certifies the imported blocks lazily; the
//                 handoff finalizes when that certificate lands
//                 (MigrationReport::certified), off the critical path.
//                 Certification is tracked per migration sequence, so a
//                 certificate landing after a later migration has
//                 already applied still finalizes the *right* report.
//
// The coordinator is transport-agnostic: it drives a ShardMigrationHost
// (implemented by the api-layer ShardRouter) and mutates the shared
// OwnershipTable; it never talks to nodes directly.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/partitioner.h"
#include "lsmerkle/kv.h"
#include "runtime/runtime.h"

namespace wedge {

struct ReshardingConfig {
  /// Minimum settle window between fencing the moving range and the
  /// export scan. The export additionally waits for explicit source
  /// quiescence (FenceRange's callback: every pre-fence write reached
  /// its Phase-I commit), so this timer exists for writes buffered
  /// *below* the routing layer (at the edge awaiting a partial flush).
  /// Must comfortably exceed EdgeConfig::partial_flush_delay —
  /// Store::Open enforces a floor of 2x the partial-flush delay on
  /// sharded stores.
  SimTime drain_delay = 500 * kMillisecond;
  /// Ceiling on one migration attempt, measured from the
  /// fence. A source or destination edge that crashes mid-migration
  /// leaves the export scan or the import write hanging forever; when
  /// the new epoch has not installed by this deadline the attempt aborts
  /// cleanly — the fence lifts, parked writes flush to the unchanged
  /// owners, and ownership stays exactly as it was (migration is
  /// copy-based: the source keeps its data until the epoch installs, so
  /// an abort never loses keys). 0 disables the watchdog.
  SimTime migration_timeout = 30 * kSecond;
};

/// The two directions of the shard lifecycle.
enum class MigrationKind : uint8_t {
  kSplit = 0,
  kMerge = 1,
};

inline const char* MigrationKindToString(MigrationKind k) {
  return k == MigrationKind::kMerge ? "merge" : "split";
}

/// Outcome of one applied migration: what moved where, and when each
/// trust level was reached. For a split, `source` is the shard that
/// shrank and `dest` the formerly idle slot; for a merge, `source` is
/// the absorbed (now idle) slot and `dest` the surviving neighbour.
struct MigrationReport {
  MigrationKind kind = MigrationKind::kSplit;
  /// Ownership epoch the migration installed.
  OwnershipEpoch epoch = 0;
  size_t source = 0;
  size_t dest = 0;
  /// The migrated key range [moved_lo, moved_hi] (now owned by dest).
  Key moved_lo = 0;
  Key moved_hi = 0;
  /// Pairs exported from the source and applied at the destination.
  size_t pairs_moved = 0;
  /// When the new epoch went live (destination Phase I commit): reads on
  /// migrated keys serve from here on.
  SimTime applied_at = 0;
  /// When the cloud's lazy handoff certificate landed (destination
  /// Phase II). 0 / false until then.
  SimTime certified_at = 0;
  bool certified = false;
  /// True when the lazy certification *failed* after the epoch went
  /// live (a certified=false report is "failed", not "still pending",
  /// once this is set) — the migrated range's trust chain needs
  /// attention.
  bool certify_failed = false;
};

/// Historical name: the report type predates the merge path.
using SplitReport = MigrationReport;

/// The data-plane and routing hooks the coordinator drives; implemented
/// by the api-layer ShardRouter. All calls are asynchronous over the
/// simulation.
class ShardMigrationHost {
 public:
  using ExportCb =
      std::function<void(const Status&, std::vector<KvPair>, SimTime)>;
  using PhaseCb = std::function<void(const Status&, SimTime)>;

  virtual ~ShardMigrationHost() = default;

  /// Completeness-verified scan of [lo, hi] against `shard`'s edge. A
  /// tampering or truncating source must fail as SecurityViolation.
  virtual void ExportRange(size_t shard, Key lo, Key hi, ExportCb cb) = 0;

  /// Applies `pairs` to `shard`'s tree through its normal write path:
  /// `applied` at Phase I (the handoff point), `certified` at Phase II
  /// (the lazy handoff certificate).
  virtual void ImportPairs(size_t shard, std::vector<KvPair> pairs,
                           PhaseCb applied, PhaseCb certified) = 0;

  /// Parks new writes whose keys fall in [lo, hi]; reads keep flowing.
  /// `quiesced` fires once every write already routed to shard `source`
  /// at fence time has reached its Phase-I commit (or failed fast) —
  /// immediately, when none are in flight. May fire on any thread; the
  /// coordinator re-posts onto its own executor.
  virtual void FenceRange(size_t source, Key lo, Key hi,
                          std::function<void()> quiesced) = 0;

  /// Releases the fence and flushes parked writes, re-routed under the
  /// then-current ownership epoch.
  virtual void LiftFence() = 0;

  /// Runs right after the new epoch installs, fence still up: the host
  /// invalidates per-client verifier-cache entries covering the moved
  /// range (held by the split source's / merge's absorbed shard's
  /// clients) and re-sizes per-shard caches to the new ownership.
  virtual void OnEpochInstalled(const MigrationReport& report) = 0;
};

class ReshardingCoordinator {
 public:
  /// (status, report, time). On failure the report is the default object
  /// and ownership is unchanged.
  using SplitCb =
      std::function<void(const Status&, const MigrationReport&, SimTime)>;

  struct Stats {
    /// Migrations that actually started (passed pre-flight checks and
    /// fenced the moving range): started = applied + failed + in flight,
    /// per kind. Requests rejected up front count nowhere.
    uint64_t splits_started = 0;
    /// Splits whose epoch installed (handoff live at Phase I).
    uint64_t splits_applied = 0;
    /// Splits whose lazy handoff certificate landed (Phase II) —
    /// tracked per migration sequence, so back-to-back migrations each
    /// certify their own report.
    uint64_t splits_certified = 0;
    /// Migrations aborted mid-flight (lying source, failed import).
    uint64_t splits_failed = 0;
    /// The merge-direction counterparts.
    uint64_t merges_started = 0;
    uint64_t merges_applied = 0;
    uint64_t merges_certified = 0;
    uint64_t merges_failed = 0;
    /// Applied migrations whose lazy certification later FAILED (the
    /// epoch is live but the handoff's trust chain did not close).
    uint64_t certify_failures = 0;
    uint64_t pairs_migrated = 0;
  };

  ReshardingCoordinator(Executor* exec,
                        std::shared_ptr<OwnershipTable> table,
                        ShardMigrationHost* host, ReshardingConfig config = {});

  /// Splits `source`'s widest slice at its midpoint, migrating the upper
  /// half to the first idle shard slot. Exactly one migration runs at a
  /// time; `done` fires when the new epoch is live (or on the failure
  /// that aborted the split, with ownership unchanged).
  void SplitShard(size_t source, SplitCb done);

  /// The inverse migration: folds `source`'s widest slice into the
  /// adjacent surviving shard (OwnershipTable::MergePlanFor), through
  /// the same fence → drain → verified export → import → epoch-install
  /// machinery. When the merged slice was the source's last, the slot
  /// returns to the idle pool for the next split. Same single-migration
  /// and failure contract as SplitShard.
  void MergeShards(size_t source, SplitCb done);

  bool migration_in_flight() const { return in_flight_; }
  /// Sim-only live reference; concurrent readers use stats_snapshot().
  const Stats& stats() const { return stats_; }
  /// Value-copy of the migration counters under the stats lock — safe to
  /// read (Store::stats()) from any thread while the coordinator runs on
  /// a ThreadedRuntime control worker.
  Stats stats_snapshot() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  /// The most recent applied migration (certified flips asynchronously
  /// when its handoff certificate lands). Default object before the
  /// first.
  const MigrationReport& last_split() const {
    return applied_.empty() ? none_ : applied_.rbegin()->second;
  }
  /// Applied migrations by sequence number, each with its own lazy
  /// certification state — the observable trust chain of the shard
  /// lifecycle (aborted migrations never appear here). Bounded: once
  /// more than kMaxAppliedReports accumulate, the oldest *finalized*
  /// (certified or certify-failed) reports are pruned, so an
  /// auto-balanced store cycling split→merge forever holds a window,
  /// not an unbounded log; a still-pending certificate is never pruned
  /// out from under its callback.
  const std::map<uint64_t, MigrationReport>& applied_migrations() const {
    return applied_;
  }
  static constexpr size_t kMaxAppliedReports = 64;

 private:
  /// Runs the shared fence → drain → export → import → install machinery
  /// for a migration of [lo, hi] from `source` to `dest`; `install`
  /// mutates the ownership table at the handoff point.
  void RunMigration(MigrationKind kind, size_t source, size_t dest, Key lo,
                    Key hi,
                    std::function<Result<OwnershipEpoch>()> install,
                    SplitCb done);
  void Abort(MigrationKind kind, const Status& why, SimTime now,
             const SplitCb& done);
  void RecordCertificate(uint64_t seq, const Status& status, SimTime at);

  Executor* exec_;
  std::shared_ptr<OwnershipTable> table_;
  ShardMigrationHost* host_;
  ReshardingConfig config_;

  bool in_flight_ = false;
  /// Monotonic id per migration attempt; applied migrations keep their
  /// report in applied_ keyed by it, so a lazy certificate landing after
  /// later migrations have superseded the attempt still finalizes the
  /// right report (and the right counter) instead of being dropped.
  uint64_t split_seq_ = 0;
  std::map<uint64_t, MigrationReport> applied_;
  MigrationReport none_;
  /// Counter mutations happen on the control executor; the lock exists
  /// for cross-thread snapshot reads (stats_snapshot).
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace wedge
