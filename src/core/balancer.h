// AutoBalancer: the heat-driven autonomous shard lifecycle policy.
//
// PR 4 made resharding *possible* (SplitShard / MergeShards on the
// coordinator) but an operator still had to invoke it. The AutoBalancer
// closes the loop: a background simulator tick reads the routing
// layer's per-epoch heat window (RouterStats::ops_per_shard) and drives
// the coordinator autonomously —
//
//   - a shard carrying more than `split_fraction` of the window's
//     routed operations for `split_ticks` consecutive ticks is split
//     onto an idle slot (high watermark);
//   - a live shard carrying less than `merge_fraction` for
//     `merge_ticks` consecutive ticks is merged into its adjacent
//     neighbour, returning its slot to the idle pool (low watermark) —
//     which is also what un-blocks the next split when the capacity is
//     exhausted, so a shifting hotspot cycles split → merge → split
//     without operator calls and without growing the physical grid.
//
// Three dampers keep oscillating load from thrashing migrations:
// watermark *hysteresis* (an action needs N consecutive over/under
// ticks, so a load that flaps around a watermark never triggers), a
// *cooldown* after every migration, and the single-migration-in-flight
// rule inherited from the coordinator. Decisions are fractions of the
// window's total ops, so the policy is workload-rate agnostic; windows
// with fewer than `min_window_ops` operations carry no signal and leave
// the streaks untouched.
//
// The balancer is core-layer and host-agnostic: it reads heat and
// issues split/merge through std::function hooks (bound by the
// api-layer ShardRouter), and consults the shared OwnershipTable — the
// same epoch-versioned map the router routes by — for liveness, idle
// slots and merge plans.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/histogram.h"
#include "core/partitioner.h"
#include "core/resharding.h"
#include "runtime/runtime.h"

namespace wedge {

/// Per-shard load signals beyond raw op counts, produced by the routing
/// layer (RouterStats::load) and fed to the balancer via Hooks::signals.
/// Today the policy still decides on op-count heat alone — these are
/// plumbing for watermarks on read p99 / byte skew; the balancer only
/// records the latest snapshot (last_signals()).
struct ShardSignals {
  /// Read latency per shard slot, cumulative since Open (epoch installs
  /// do not reset it — latency history survives map changes).
  std::vector<Histogram> read_latency;
  /// Value bytes returned by each slot's reads.
  std::vector<uint64_t> bytes_read;
  /// Value bytes routed to each slot in write batches (counted at
  /// routing time, attributed to the owner the sub-batch commits on).
  std::vector<uint64_t> bytes_written;

  void Resize(size_t slots) {
    read_latency.resize(slots);
    bytes_read.resize(slots, 0);
    bytes_written.resize(slots, 0);
  }
};

/// Policy knobs of the autonomous shard lifecycle
/// (StoreOptions::WithAutoBalance).
struct BalancerPolicy {
  /// Master switch; the router only runs the tick loop when set (the
  /// WithAutoBalance setter sets it).
  bool enabled = false;
  /// Virtual time between heat-window reads.
  SimTime tick_period = 500 * kMillisecond;
  /// Virtual time after Start before the first window is read: bulk
  /// loads and recovery replays are transient hotspots no policy should
  /// chase (a sequential load marches a 100% hotspot across the key
  /// space). The first tick after the delay only baselines the window.
  SimTime initial_delay = 0;
  /// High watermark: a shard whose share of the window's routed ops
  /// meets this fraction is a split candidate.
  double split_fraction = 0.5;
  /// Low watermark: a live shard whose share falls to or below this
  /// fraction is a merge candidate (its survivor must itself not be a
  /// split candidate, so a merge never feeds a hot shard).
  double merge_fraction = 0.05;
  /// Hysteresis: consecutive over/under-watermark ticks required before
  /// acting. Oscillating load that flaps across a watermark resets the
  /// streak and never triggers a migration.
  uint32_t split_ticks = 2;
  uint32_t merge_ticks = 3;
  /// Virtual time after a triggered migration during which no new one
  /// is triggered (the workload gets to settle under the new map).
  SimTime cooldown = 2 * kSecond;
  /// Windows with fewer routed ops than this carry no signal: streaks
  /// hold (an idle store neither splits nor merges on noise).
  uint64_t min_window_ops = 32;
  /// Never merge below this many live shards (a floor of parallelism;
  /// set it to the seed shard count to only reclaim split-created
  /// slots).
  size_t min_live_shards = 1;
};

/// Counters of the autonomous lifecycle, exposed through
/// Store::balancer() / Store::stats().
struct BalancerStats {
  uint64_t ticks = 0;
  /// Migrations the policy triggered (attempts; failures of the
  /// underlying migration count in failed_actions too).
  uint64_t auto_splits = 0;
  uint64_t auto_merges = 0;
  /// Triggered migrations whose coordinator run failed.
  uint64_t failed_actions = 0;
  /// Ticks where a watermark was crossed but the streak had not yet
  /// reached the hysteresis count.
  uint64_t hysteresis_suppressed = 0;
  /// Ticks where an action was due but suppressed by the post-migration
  /// cooldown.
  uint64_t cooldown_suppressed = 0;
  /// Ticks where a split was due but no idle slot existed (waiting for
  /// a merge to reclaim one).
  uint64_t split_blocked_no_slot = 0;
};

class AutoBalancer {
 public:
  /// Heat and actuation hooks, bound by the routing layer. `heat`
  /// returns the per-slot routed-op counters of the *current* ownership
  /// epoch's window (RouterStats::ops_per_shard — cumulative since the
  /// last epoch install); `busy` is
  /// ReshardingCoordinator::migration_in_flight.
  struct Hooks {
    std::function<std::vector<uint64_t>()> heat;
    std::function<void(size_t, ReshardingCoordinator::SplitCb)> split;
    std::function<void(size_t, ReshardingCoordinator::SplitCb)> merge;
    std::function<bool()> busy;
    /// Optional richer load snapshot (per-shard read-latency histograms
    /// and byte counters). Read once per tick when bound; the latest
    /// snapshot is kept in last_signals(). No policy consumes it yet.
    std::function<ShardSignals()> signals;
  };

  AutoBalancer(Executor* exec, std::shared_ptr<OwnershipTable> table,
               BalancerPolicy policy, Hooks hooks);

  /// Starts the recurring tick on the simulation. Idempotent.
  void Start();

  /// One policy evaluation over the heat window since the previous
  /// tick. Public so policy unit tests (and manual drivers) can step
  /// the balancer without waiting out tick_period on the simulator.
  void Tick();

  const BalancerPolicy& policy() const { return policy_; }
  /// Live reference; safe under SimRuntime only (ticks run on the
  /// balancer's executor). Cross-thread readers use stats_snapshot().
  const BalancerStats& stats() const { return stats_; }
  /// Locked copy, safe from any thread while ticks run.
  BalancerStats stats_snapshot() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  /// The most recent Hooks::signals snapshot (empty until the first
  /// tick, or when the hook is unbound).
  const ShardSignals& last_signals() const { return last_signals_; }

 private:
  /// Per-tick watermark decision inputs: the delta of routed ops per
  /// slot since the previous tick, and their sum.
  struct Window {
    std::vector<uint64_t> delta;
    uint64_t total = 0;
  };

  void ScheduleNextTick();
  std::optional<Window> ReadWindow();
  void UpdateStreaks(const Window& w);
  /// Ready candidates only — slots whose streak already cleared the
  /// hysteresis bar (a hotter-but-flapping slot cannot shadow a mature
  /// one).
  std::optional<size_t> SplitCandidate() const;
  std::optional<size_t> MergeCandidate() const;
  bool AnyStreakBuilding() const;

  Executor* exec_;
  std::shared_ptr<OwnershipTable> table_;
  BalancerPolicy policy_;
  Hooks hooks_;

  bool started_ = false;
  /// False until the first window read: the opening tick only
  /// baselines, so everything before it (preload, recovery) is
  /// discarded rather than read as one giant window.
  bool primed_ = false;
  OwnershipEpoch seen_epoch_ = 0;
  std::vector<uint64_t> prev_;
  /// Consecutive ticks each slot has been over the split / under the
  /// merge watermark. Reset on epoch change (a new ownership regime
  /// starts a fresh argument) and on the opposite observation.
  std::vector<uint32_t> hot_streak_;
  std::vector<uint32_t> cold_streak_;
  /// Share of the last window's ops per slot (the fractions the streaks
  /// were updated from; kept for the survivor-not-hot merge guard).
  std::vector<double> last_fraction_;
  SimTime last_action_at_ = 0;
  bool acted_once_ = false;

  /// Guards stats_ alone: counters are bumped on the tick executor (and
  /// failed_actions on whichever executor completes a migration) while
  /// Store::stats() snapshots from the caller's thread.
  mutable std::mutex stats_mu_;
  BalancerStats stats_;
  ShardSignals last_signals_;
};

}  // namespace wedge
