// TrustAuthority: the punishment mechanism of the paper's security model
// (§II-D): identities are known, punishments deter misbehavior, and a
// punished node cannot re-enter.
//
// In this implementation a punishment revokes the identity in the
// KeyStore, so every subsequent message from the punished node fails
// signature verification — the strongest form of "cannot re-enter" the
// simulation can express.

#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "crypto/signature.h"

namespace wedge {

struct PunishmentRecord {
  NodeId node = kInvalidNodeId;
  std::string reason;
  SimTime at = 0;
};

class TrustAuthority {
 public:
  explicit TrustAuthority(KeyStore* keystore) : keystore_(keystore) {}

  /// Punishes `node`: records the offence and revokes the identity.
  /// Idempotent — repeated punishment of the same node records once.
  /// Punishments land on the cloud's executor while tests and chaos
  /// probes read from other threads, so the record book is locked.
  void Punish(NodeId node, const std::string& reason, SimTime at) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : records_) {
      if (r.node == node) return;
    }
    records_.push_back({node, reason, at});
    (void)keystore_->Revoke(node);
  }

  bool IsPunished(NodeId node) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : records_) {
      if (r.node == node) return true;
    }
    return false;
  }

  std::vector<PunishmentRecord> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

 private:
  KeyStore* keystore_;
  mutable std::mutex mu_;
  std::vector<PunishmentRecord> records_;
};

}  // namespace wedge
