#include "core/balancer.h"

#include <algorithm>
#include <utility>

namespace wedge {

AutoBalancer::AutoBalancer(Executor* exec,
                           std::shared_ptr<OwnershipTable> table,
                           BalancerPolicy policy, Hooks hooks)
    : exec_(exec),
      table_(std::move(table)),
      policy_(policy),
      hooks_(std::move(hooks)) {
  const size_t slots = table_->capacity();
  prev_.assign(slots, 0);
  hot_streak_.assign(slots, 0);
  cold_streak_.assign(slots, 0);
  last_fraction_.assign(slots, 0.0);
  seen_epoch_ = table_->epoch();
}

void AutoBalancer::Start() {
  if (started_) return;
  started_ = true;
  exec_->After(policy_.initial_delay, [this]() { ScheduleNextTick(); });
}

void AutoBalancer::ScheduleNextTick() {
  // The tick self-reschedules for the simulation's life, like the
  // cloud's gossip timer: every window read is one cheap event.
  exec_->After(policy_.tick_period, [this]() {
    Tick();
    ScheduleNextTick();
  });
}

std::optional<AutoBalancer::Window> AutoBalancer::ReadWindow() {
  std::vector<uint64_t> cur = hooks_.heat();
  cur.resize(table_->capacity(), 0);
  if (!primed_) {
    primed_ = true;
    seen_epoch_ = table_->epoch();
    prev_ = std::move(cur);
    return std::nullopt;
  }
  if (table_->epoch() != seen_epoch_) {
    // A migration installed a new ownership map since the last tick:
    // the routing layer reset its heat counters and the old streaks
    // argue about slices that no longer exist. Start a fresh window.
    seen_epoch_ = table_->epoch();
    prev_ = std::move(cur);
    std::fill(hot_streak_.begin(), hot_streak_.end(), 0);
    std::fill(cold_streak_.begin(), cold_streak_.end(), 0);
    std::fill(last_fraction_.begin(), last_fraction_.end(), 0.0);
    return std::nullopt;
  }
  Window w;
  w.delta.resize(cur.size());
  for (size_t s = 0; s < cur.size(); ++s) {
    // Monotone within an epoch: the router only resets the counters at
    // an epoch install, and that case re-baselined above.
    w.delta[s] = cur[s] - prev_[s];
    w.total += w.delta[s];
  }
  prev_ = std::move(cur);
  return w;
}

void AutoBalancer::UpdateStreaks(const Window& w) {
  for (size_t s = 0; s < w.delta.size(); ++s) {
    const bool live = table_->WidestSliceOf(s).has_value();
    const double frac =
        w.total == 0 ? 0.0
                     : static_cast<double>(w.delta[s]) /
                           static_cast<double>(w.total);
    last_fraction_[s] = frac;
    if (!live) {
      hot_streak_[s] = 0;
      cold_streak_[s] = 0;
      continue;
    }
    if (frac >= policy_.split_fraction) {
      hot_streak_[s]++;
    } else {
      hot_streak_[s] = 0;
    }
    if (frac <= policy_.merge_fraction) {
      cold_streak_[s]++;
    } else {
      cold_streak_[s] = 0;
    }
  }
}

std::optional<size_t> AutoBalancer::SplitCandidate() const {
  // The hottest slot whose streak cleared the hysteresis bar and whose
  // widest slice is splittable. Only mature streaks compete, so a
  // steadily-hot shard can never be starved by a hotter one that flaps
  // across the watermark (and so never matures).
  std::optional<size_t> best;
  for (size_t s = 0; s < hot_streak_.size(); ++s) {
    if (hot_streak_[s] < policy_.split_ticks) continue;
    const std::optional<OwnedSlice> slice = table_->WidestSliceOf(s);
    if (!slice.has_value() || slice->lo >= slice->hi) continue;
    if (!best.has_value() || last_fraction_[s] > last_fraction_[*best]) {
      best = s;
    }
  }
  return best;
}

std::optional<size_t> AutoBalancer::MergeCandidate() const {
  if (table_->LiveShards() <= policy_.min_live_shards) return std::nullopt;
  // The coldest slot with a mature under-watermark streak whose planned
  // survivor is itself not over the high watermark (a merge must never
  // feed a hot shard).
  std::optional<size_t> best;
  for (size_t s = 0; s < cold_streak_.size(); ++s) {
    if (cold_streak_[s] < policy_.merge_ticks) continue;
    const std::optional<MergePlan> plan = table_->MergePlanFor(s);
    if (!plan.has_value()) continue;
    if (last_fraction_[plan->survivor] >= policy_.split_fraction) continue;
    if (!best.has_value() || last_fraction_[s] < last_fraction_[*best]) {
      best = s;
    }
  }
  return best;
}

bool AutoBalancer::AnyStreakBuilding() const {
  for (size_t s = 0; s < hot_streak_.size(); ++s) {
    if (hot_streak_[s] > 0 && hot_streak_[s] < policy_.split_ticks) return true;
    if (cold_streak_[s] > 0 && cold_streak_[s] < policy_.merge_ticks) {
      return true;
    }
  }
  return false;
}

void AutoBalancer::Tick() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.ticks++;
  }
  if (hooks_.signals) last_signals_ = hooks_.signals();
  const std::optional<Window> window = ReadWindow();
  if (!window.has_value()) return;  // fresh epoch: re-baseline only
  if (window->total < policy_.min_window_ops) return;  // no signal
  UpdateStreaks(*window);

  if (hooks_.busy && hooks_.busy()) return;  // one migration at a time

  // Only candidates whose streak cleared the hysteresis bar compete.
  const std::optional<size_t> split_cand = SplitCandidate();
  const std::optional<size_t> merge_cand = MergeCandidate();
  const bool split_ready = split_cand.has_value();
  const bool merge_ready = merge_cand.has_value();
  if (!split_ready && !merge_ready) {
    if (AnyStreakBuilding()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.hysteresis_suppressed++;
    }
    return;
  }

  const SimTime now = exec_->Now();
  if (acted_once_ && now - last_action_at_ < policy_.cooldown) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.cooldown_suppressed++;
    return;
  }

  // At most one migration per tick. A ready split takes priority (it
  // relieves an overloaded edge now); when the capacity is exhausted the
  // merge goes first and reclaims the slot the split needs.
  const bool have_idle = table_->FirstIdleShard().has_value();
  auto on_done = [this](const Status& s, const MigrationReport&, SimTime) {
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.failed_actions++;
    }
  };
  if (split_ready && have_idle) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.auto_splits++;
    }
    acted_once_ = true;
    last_action_at_ = now;
    hooks_.split(*split_cand, on_done);
    return;
  }
  if (merge_ready) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.auto_merges++;
    }
    acted_once_ = true;
    last_action_at_ = now;
    hooks_.merge(*merge_cand, on_done);
    return;
  }
  if (split_ready && !have_idle) {
    // Hot shard, no slot, nothing cold enough to merge yet: record the
    // blockage; the low watermark will eventually free a slot.
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.split_blocked_no_slot++;
  }
}

}  // namespace wedge
