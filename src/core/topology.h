// Topology: the substrate every deployment shares — the simulator, the
// identity keystore, and the simulated network, seeded identically so
// WedgeChain and the two baselines are compared on the same virtual
// world. The registration helpers keep node naming ("cloud", "edge-N",
// "client-N") consistent across all three deployments.

#pragma once

#include <memory>
#include <string>

#include "crypto/signature.h"
#include "simnet/network.h"
#include "simnet/simulation.h"

namespace wedge {

class Topology {
 public:
  Topology(uint64_t seed, const NetworkConfig& net_config)
      : sim_(seed), keystore_(seed ^ 0x9e77) {
    net_ = std::make_unique<SimNetwork>(&sim_, net_config);
  }

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  Simulation& sim() { return sim_; }
  SimNetwork& net() { return *net_; }
  KeyStore& keystore() { return keystore_; }
  const KeyStore& keystore() const { return keystore_; }

  Signer RegisterCloud() { return keystore_.Register(Role::kCloud, "cloud"); }
  Signer RegisterEdge(size_t i) {
    return keystore_.Register(Role::kEdge, "edge-" + std::to_string(i));
  }
  Signer RegisterClient(size_t i) {
    return keystore_.Register(Role::kClient, "client-" + std::to_string(i));
  }

  /// Registers `n` client identities and calls `make(signer, index)` for
  /// each — the client-construction loop shared by all deployments.
  template <typename MakeFn>
  void MakeClients(size_t n, MakeFn make) {
    for (size_t i = 0; i < n; ++i) make(RegisterClient(i), i);
  }

 private:
  Simulation sim_;
  KeyStore keystore_;
  std::unique_ptr<SimNetwork> net_;
};

}  // namespace wedge
