// Topology: the substrate every deployment shares — the runtime (event
// loop + transport + clock) and the identity keystore, seeded identically
// so WedgeChain and the two baselines are compared on the same virtual
// world. The registration helpers keep node naming ("cloud", "edge-N",
// "client-N") consistent across all three deployments.
//
// The runtime is chosen by RuntimeConfig::kind: the deterministic
// SimRuntime (default — virtual time, CostModel, failure injection) or
// ThreadedRuntime (real threads, wall clock). The sim()/net() accessors
// exist for sim-only features and abort under threads; runtime code paths
// must go through runtime()/transport().

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "crypto/signature.h"
#include "runtime/runtime.h"
#include "runtime/sim_runtime.h"
#include "runtime/threaded_runtime.h"
#include "simnet/network.h"
#include "simnet/simulation.h"

namespace wedge {

class Topology {
 public:
  Topology(uint64_t seed, const NetworkConfig& net_config,
           const RuntimeConfig& rt_config = {})
      : keystore_(seed ^ 0x9e77) {
    if (rt_config.kind == RuntimeKind::kSim) {
      auto sim_rt = std::make_unique<SimRuntime>(seed, net_config);
      sim_runtime_ = sim_rt.get();
      runtime_ = std::move(sim_rt);
    } else {
      runtime_ = std::make_unique<ThreadedRuntime>(rt_config);
    }
  }

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  Runtime& runtime() { return *runtime_; }
  Transport& transport() { return runtime_->transport(); }

  /// Sim-only accessors (deterministic stepping, latency matrix, failure
  /// injection). Abort under ThreadedRuntime: callers that can run on
  /// either runtime must use runtime()/transport() instead.
  Simulation& sim() { return RequireSim().sim(); }
  SimNetwork& net() { return RequireSim().net(); }

  KeyStore& keystore() { return keystore_; }
  const KeyStore& keystore() const { return keystore_; }

  Signer RegisterCloud() { return keystore_.Register(Role::kCloud, "cloud"); }
  Signer RegisterEdge(size_t i) {
    return keystore_.Register(Role::kEdge, "edge-" + std::to_string(i));
  }
  Signer RegisterClient(size_t i) {
    return keystore_.Register(Role::kClient, "client-" + std::to_string(i));
  }
  /// A sharded deployment runs one physical client per (logical client,
  /// shard) pair; the name records both so logs and dispute records stay
  /// attributable to the logical caller.
  Signer RegisterClientShard(size_t logical, size_t shard) {
    return keystore_.Register(Role::kClient, "client-" +
                                                 std::to_string(logical) +
                                                 ".s" + std::to_string(shard));
  }

  /// Registers `n` client identities and calls `make(signer, index)` for
  /// each — the client-construction loop shared by all deployments.
  template <typename MakeFn>
  void MakeClients(size_t n, MakeFn make) {
    for (size_t i = 0; i < n; ++i) make(RegisterClient(i), i);
  }

  /// Shard-aware variant: when `num_shards >= 1`, physical client
  /// i = logical * num_shards + shard is registered under a name carrying
  /// both coordinates, and `make(signer, i)` is called in the same flat
  /// order MakeClients would use (the routing layer relies on exactly
  /// this layout). With num_shards == 0, identical to MakeClients.
  template <typename MakeFn>
  void MakeShardedClients(size_t n, size_t num_shards, MakeFn make) {
    if (num_shards == 0) {
      MakeClients(n, make);
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      make(RegisterClientShard(i / num_shards, i % num_shards), i);
    }
  }

 private:
  SimRuntime& RequireSim() {
    if (sim_runtime_ == nullptr) {
      std::fprintf(stderr,
                   "Topology::sim()/net() called under ThreadedRuntime; "
                   "this code path is sim-only\n");
      std::abort();
    }
    return *sim_runtime_;
  }

  KeyStore keystore_;
  std::unique_ptr<Runtime> runtime_;
  SimRuntime* sim_runtime_ = nullptr;  // non-null iff kind == kSim
};

}  // namespace wedge
