#include "core/cloud_node.h"

#include "common/logging.h"
#include "lsmerkle/level.h"
#include "lsmerkle/merge.h"

namespace wedge {

CloudNode::CloudNode(Executor* exec, Transport* net,
                     const KeyStore* keystore, TrustAuthority* authority,
                     Signer signer, Dc location, CloudConfig config,
                     CostModel costs)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      authority_(authority),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      location_(location),
      config_(config),
      costs_(costs),
      cert_lane_(exec->MakeLane()),
      merge_lane_(exec->MakeLane()) {}

void CloudNode::Start() {
  net_->Attach(id(), location_, this);
  if (config_.gossip_period > 0) {
    exec_->After(config_.gossip_period, [this] { GossipTick(); });
  }
}

void CloudNode::SubscribeGossip(NodeId client, NodeId edge) {
  gossip_subs_.emplace(edge, client);
}

void CloudNode::RestoreState(CloudStorage::RecoveredState state) {
  edges_.clear();
  for (auto& [edge, recovered] : state.edges) {
    EdgeRecord& rec = edges_[edge];
    rec.certified = std::move(recovered.certified);
    rec.level_roots = std::move(recovered.level_roots);
    rec.epoch = recovered.epoch;
    rec.backup = std::move(recovered.backup);
    AdvanceContiguous(&rec);
  }
  flagged_ = std::move(state.flagged);
  // Punishments persist beyond a cloud restart (§II-D assumption 2).
  for (NodeId edge : flagged_) {
    authority_->Punish(edge, "restored malicious flag", 0);
  }
}

void CloudNode::SendSealed(NodeId to, MsgType type, Bytes body) {
  net_->Send(id(), to, sealer_.Seal(to, type, body));
}

CloudNode::EdgeRecord& CloudNode::RecordFor(NodeId edge) {
  return edges_[edge];
}

void CloudNode::MaybeBackup(NodeId edge, EdgeRecord* rec, const Block& block,
                            bool is_kv) {
  if (!config_.backup_blocks) return;
  if (rec->backup.count(block.id) != 0) return;
  rec->backup.emplace(block.id, std::make_pair(block, is_kv));
  stats_.backup_blocks_stored++;
  if (storage_ != nullptr &&
      !storage_->PersistBackupBlock(edge, block, is_kv).ok()) {
    stats_.storage_errors++;
  }
}

std::optional<Digest256> CloudNode::CertifiedDigest(NodeId edge,
                                                    BlockId bid) const {
  auto eit = edges_.find(edge);
  if (eit == edges_.end()) return std::nullopt;
  auto bit = eit->second.certified.find(bid);
  if (bit == eit->second.certified.end()) return std::nullopt;
  return bit->second;
}

void CloudNode::AdvanceContiguous(EdgeRecord* rec) {
  while (rec->certified.count(rec->contiguous) != 0) rec->contiguous++;
}

void CloudNode::OnMessage(NodeId from, Slice payload, SimTime now) {
  auto env = opener_.Open(payload);
  if (!env.ok()) {
    WLOG_DEBUG << "cloud: rejecting message: " << env.status();
    return;
  }
  switch (env->type) {
    case MsgType::kBlockCertify: {
      auto msg = BlockCertify::Decode(env->body);
      if (!msg.ok()) return;
      if (!keystore_->HasRole(from, Role::kEdge)) return;
      // Data-free: cost is size-independent. With the ablation's full
      // block attached, the cloud must hash/verify the data too.
      SimTime cost = costs_.cloud_cert_fixed;
      if (msg->full_block.has_value()) {
        if (msg->full_block->Digest() != msg->digest) {
          FlagMalicious(from, "full block does not match offered digest",
                        now);
          return;
        }
        cost += static_cast<SimTime>(
            costs_.cloud_merge_per_byte *
            static_cast<double>(msg->full_block->ByteSize()));
      }
      cert_lane_->Execute(cost, [this, from, m = *msg] {
        HandleBlockCertify(from, m, exec_->Now());
      });
      break;
    }
    case MsgType::kMergeRequest: {
      auto msg = MergeRequest::Decode(env->body);
      if (!msg.ok()) return;
      if (!keystore_->HasRole(from, Role::kEdge)) return;
      const SimTime cost = costs_.CloudMerge(msg->ByteSize());
      merge_lane_->Execute(cost, [this, from, m = std::move(*msg)] {
        HandleMergeRequest(from, m, exec_->Now());
      });
      break;
    }
    case MsgType::kDispute: {
      auto msg = Dispute::Decode(env->body);
      if (!msg.ok()) return;
      if (!keystore_->HasRole(from, Role::kClient)) return;
      merge_lane_->Execute(costs_.cloud_cert_fixed,
                          [this, from, m = std::move(*msg)] {
                            HandleDispute(from, m, exec_->Now());
                          });
      break;
    }
    case MsgType::kBackupFetch: {
      auto msg = BackupFetch::Decode(env->body);
      if (!msg.ok()) return;
      if (!keystore_->HasRole(from, Role::kEdge)) return;
      merge_lane_->Execute(costs_.cloud_cert_fixed, [this, from, m = *msg] {
        HandleBackupFetch(from, m, exec_->Now());
      });
      break;
    }
    case MsgType::kCloudGetRequest: {
      auto msg = CloudGetRequest::Decode(env->body);
      if (!msg.ok()) return;
      if (!keystore_->HasRole(from, Role::kClient)) return;
      merge_lane_->Execute(costs_.cloud_cert_fixed, [this, from, m = *msg] {
        HandleCloudGet(from, m, exec_->Now());
      });
      break;
    }
    default:
      WLOG_DEBUG << "cloud: unexpected message type "
                 << MsgTypeToString(env->type);
  }
}

void CloudNode::HandleBlockCertify(NodeId edge, const BlockCertify& msg,
                                   SimTime now) {
  EdgeRecord& rec = RecordFor(edge);
  // Backup before the digest record: the digest's sync then also makes
  // the backup body durable, so a recovered registry never knows about a
  // block whose backup was lost.
  if (msg.full_block.has_value() && msg.full_block->Digest() == msg.digest) {
    MaybeBackup(edge, &rec, *msg.full_block, msg.is_kv);
  }
  auto it = rec.certified.find(msg.bid);
  if (it != rec.certified.end()) {
    if (it->second != msg.digest) {
      // Two different digests for one bid: equivocation, the exact attack
      // agreement rules out (paper Def. 2).
      stats_.equivocations_detected++;
      FlagMalicious(edge, "equivocation on block " + std::to_string(msg.bid),
                    now);
      CertifyReject reject{msg.bid, msg.digest, it->second};
      SendSealed(edge, MsgType::kCertifyReject, reject.Encode());
      return;
    }
    // Same digest again: idempotent re-certify; resend the proof.
    stats_.duplicate_certifies++;
  } else {
    rec.certified.emplace(msg.bid, msg.digest);
    AdvanceContiguous(&rec);
    stats_.certified_blocks++;
    if (storage_ != nullptr &&
        !storage_->PersistDigest(edge, msg.bid, msg.digest).ok()) {
      stats_.storage_errors++;
    }
  }
  BlockProof proof;
  proof.cert = BlockCertificate::Make(signer_, edge, msg.bid, msg.digest, now);
  SendSealed(edge, MsgType::kBlockProof, proof.Encode());
}

void CloudNode::HandleMergeRequest(NodeId edge, const MergeRequest& msg,
                                   SimTime now) {
  EdgeRecord& rec = RecordFor(edge);

  auto fail = [&](const std::string& why) {
    FlagMalicious(edge, "bad merge request: " + why, now);
  };

  // Mirror the edge's fixed level structure. The structure must not
  // change across merges; a change would alter global-root computation.
  if (rec.level_roots.empty()) {
    rec.level_roots.resize(msg.num_levels);
  } else if (rec.level_roots.size() != msg.num_levels) {
    fail("level structure changed across merges");
    return;
  }
  if (msg.from_level + 1 > msg.num_levels) {
    fail("merge past the last level");
    return;
  }
  const size_t nlevels = rec.level_roots.size();

  // --- Verify the inputs are the state this cloud previously certified.
  std::vector<KvPair> newer;
  if (msg.from_level == 0) {
    // Digest the whole L0 run in one multi-buffer batch.
    const std::vector<Digest256> l0_digests = Block::DigestMany(msg.l0_blocks);
    for (size_t bi = 0; bi < msg.l0_blocks.size(); ++bi) {
      const Block& blk = msg.l0_blocks[bi];
      auto cert = rec.certified.find(blk.id);
      const Digest256& digest = l0_digests[bi];
      if (cert != rec.certified.end()) {
        if (!cert->second.CryptoEquals(digest)) {
          fail("L0 block " + std::to_string(blk.id) +
               " does not match certified digest");
          return;
        }
      } else {
        // Certify-on-merge: first sighting of this block's digest. The
        // regular block-certify will be treated as a duplicate.
        rec.certified.emplace(blk.id, digest);
        AdvanceContiguous(&rec);
        stats_.certified_blocks++;
        if (storage_ != nullptr &&
            !storage_->PersistDigest(edge, blk.id, digest).ok()) {
          stats_.storage_errors++;
        }
        BlockProof proof;
        proof.cert =
            BlockCertificate::Make(signer_, edge, blk.id, digest, now);
        SendSealed(edge, MsgType::kBlockProof, proof.Encode());
      }
      // Merge requests are the one place data-free certification shows
      // the cloud full L0 bodies: capture them for backup.
      MaybeBackup(edge, &rec, blk, /*is_kv=*/true);
      // Content-defined extraction (same rule as the edge and the client
      // verifier): raw append entries contribute no pairs.
      for (auto& p : ExtractKvPairs(blk)) newer.push_back(std::move(p));
    }
  } else {
    // Verify the source level pages against the recorded root. The
    // page digests run as one multi-buffer batch (SealAll), and the
    // root comparison is constant-time: this is a verification of
    // attacker-controllable input.
    Page::SealAll(msg.from_pages);
    std::vector<Digest256> leaves;
    for (const Page& p : msg.from_pages) leaves.push_back(p.Digest());
    Digest256 root = MerkleTree::ComputeRoot(std::move(leaves));
    Digest256 expected = msg.from_level <= nlevels
                             ? rec.level_roots[msg.from_level - 1]
                             : Digest256();
    if (!root.CryptoEquals(expected)) {
      fail("source level pages do not match certified root");
      return;
    }
    for (const Page& p : msg.from_pages) {
      for (const auto& kv : p.pairs) newer.push_back(kv);
    }
  }
  {
    Page::SealAll(msg.to_pages);
    std::vector<Digest256> leaves;
    for (const Page& p : msg.to_pages) leaves.push_back(p.Digest());
    Digest256 root = MerkleTree::ComputeRoot(std::move(leaves));
    Digest256 expected = msg.from_level + 1 <= nlevels
                             ? rec.level_roots[msg.from_level]
                             : Digest256();
    if (!root.CryptoEquals(expected)) {
      fail("target level pages do not match certified root");
      return;
    }
  }

  // --- Merge and re-sign.
  auto merged = MergeIntoPages(std::move(newer), msg.to_pages,
                               config_.target_page_pairs, now);
  if (!merged.ok()) {
    fail("merge failed: " + merged.status().ToString());
    return;
  }

  {
    Page::SealAll(*merged);
    std::vector<Digest256> leaves;
    for (const Page& p : *merged) leaves.push_back(p.Digest());
    rec.level_roots[msg.from_level] = MerkleTree::ComputeRoot(leaves);
  }
  if (msg.from_level > 0) {
    rec.level_roots[msg.from_level - 1] = Digest256();
  }
  rec.epoch++;
  stats_.merges_performed++;
  if (storage_ != nullptr &&
      !storage_->PersistMergeState(edge, rec.epoch, rec.level_roots).ok()) {
    stats_.storage_errors++;
  }

  MergeResponse resp;
  resp.from_level = msg.from_level;
  resp.consumed_l0 = static_cast<uint32_t>(msg.l0_blocks.size());
  resp.merged = std::move(*merged);
  resp.root_cert = RootCertificate::Make(
      signer_, edge, rec.epoch,
      ComputeGlobalRoot(rec.epoch, rec.level_roots), now);
  SendSealed(edge, MsgType::kMergeResponse, resp.Encode());
}

void CloudNode::HandleDispute(NodeId client, const Dispute& msg,
                              SimTime now) {
  stats_.disputes_received++;
  DisputeVerdict verdict;
  verdict.edge = msg.edge;
  verdict.bid = msg.bid;

  auto certified = CertifiedDigest(msg.edge, msg.bid);
  if (certified.has_value()) {
    verdict.has_certified_digest = true;
    verdict.certified_digest = *certified;
  }

  // Evidence must be an envelope genuinely signed by the accused edge
  // (historical: the edge may already be revoked).
  auto env = Envelope::OpenHistorical(*keystore_, msg.evidence);
  if (env.ok() && env->sender == msg.edge) {
    switch (msg.kind) {
      case DisputeKind::kAddMismatch: {
        auto resp = AddResponse::Decode(env->body);
        if (resp.ok() && env->type == MsgType::kAddResponse &&
            resp->bid == msg.bid && certified.has_value() &&
            resp->block.Digest() != *certified) {
          verdict.edge_guilty = true;
        }
        break;
      }
      case DisputeKind::kReadMismatch: {
        auto resp = ReadResponse::Decode(env->body);
        if (resp.ok() && env->type == MsgType::kReadResponse &&
            resp->available && resp->bid == msg.bid &&
            certified.has_value() &&
            resp->block.Digest() != *certified) {
          verdict.edge_guilty = true;
        }
        break;
      }
      case DisputeKind::kOmission: {
        auto resp = ReadResponse::Decode(env->body);
        if (resp.ok() && env->type == MsgType::kReadResponse &&
            !resp->available && resp->bid == msg.bid &&
            certified.has_value()) {
          // The edge signed "not available" for a block it certified.
          verdict.edge_guilty = true;
        }
        break;
      }
      case DisputeKind::kScanTruncation: {
        // Self-contained evidence: re-run the completeness verifier on
        // the edge's own signed scan response. Only a genuine
        // inconsistency (never mere Phase-I-ness or staleness) verdicts
        // as SecurityViolation.
        auto resp = ScanResponse::Decode(env->body);
        if (resp.ok() && env->type == MsgType::kScanResponse) {
          auto reverify =
              VerifyScanResponse(*keystore_, msg.edge, resp->body.lo,
                                 resp->body.hi, resp->body);
          if (!reverify.ok() &&
              reverify.status().IsSecurityViolation()) {
            verdict.edge_guilty = true;
          }
        }
        break;
      }
    }
  }

  if (verdict.edge_guilty) {
    stats_.disputes_upheld++;
    FlagMalicious(msg.edge, "dispute upheld for block " +
                                std::to_string(msg.bid),
                  now);
  }
  SendSealed(client, MsgType::kDisputeVerdict, verdict.Encode());
}

void CloudNode::HandleBackupFetch(NodeId edge, const BackupFetch& msg,
                                  SimTime now) {
  stats_.backup_fetches_served++;
  BackupBlocks resp;
  resp.from_bid = msg.from_bid;
  auto eit = edges_.find(edge);
  if (eit != edges_.end()) {
    for (auto it = eit->second.backup.lower_bound(msg.from_bid);
         it != eit->second.backup.end(); ++it) {
      if (msg.max_blocks > 0 && resp.items.size() >= msg.max_blocks) {
        resp.complete = false;
        break;
      }
      BackupItem item;
      item.block = it->second.first;
      item.is_kv = it->second.second;
      // A fresh certificate: the edge (and its clients) verify the body
      // against the certified digest with no extra round trip.
      item.cert = BlockCertificate::Make(signer_, edge, it->first,
                                         item.block.Digest(), now);
      resp.items.push_back(std::move(item));
    }
  }
  SendSealed(edge, MsgType::kBackupBlocks, resp.Encode());
}

void CloudNode::HandleCloudGet(NodeId client, const CloudGetRequest& msg,
                               SimTime now) {
  stats_.failover_gets_served++;
  CloudGetResponse resp;
  resp.req_id = msg.req_id;
  auto eit = edges_.find(msg.edge);
  if (eit != edges_.end()) {
    // Newest wins: scan the backup from the highest block id down and
    // return the first kv block containing the key. The client verifies
    // the certificate and extracts the newest version itself.
    for (auto it = eit->second.backup.rbegin();
         it != eit->second.backup.rend(); ++it) {
      const auto& [block, is_kv] = it->second;
      if (!is_kv) continue;
      bool has_key = false;
      for (const KvPair& p : ExtractKvPairs(block)) {
        if (p.key == msg.key) {
          has_key = true;
          break;
        }
      }
      if (!has_key) continue;
      resp.found = true;
      resp.block = block;
      resp.cert = BlockCertificate::Make(signer_, msg.edge, it->first,
                                         block.Digest(), now);
      break;
    }
  }
  SendSealed(client, MsgType::kCloudGetResponse, resp.Encode());
}

void CloudNode::GossipTick() {
  for (auto& [edge, rec] : edges_) {
    Gossip g{edge, rec.contiguous, exec_->Now()};
    Bytes body = g.Encode();
    auto range = gossip_subs_.equal_range(edge);
    for (auto it = range.first; it != range.second; ++it) {
      SendSealed(it->second, MsgType::kGossip, body);
      stats_.gossip_sent++;
    }
  }
  exec_->After(config_.gossip_period, [this] { GossipTick(); });
}

void CloudNode::FlagMalicious(NodeId edge, const std::string& reason,
                              SimTime now) {
  if (flagged_.insert(edge).second) {
    WLOG_INFO << "cloud: flagging edge " << edge << " as malicious: "
              << reason;
    authority_->Punish(edge, reason, now);
    if (storage_ != nullptr && !storage_->PersistFlagged(edge).ok()) {
      stats_.storage_errors++;
    }
  }
}

}  // namespace wedge
