// Configuration knobs for the WedgeChain nodes.

#pragma once

#include "common/types.h"
#include "lsmerkle/lsmerkle_tree.h"
#include "lsmerkle/verifier_cache.h"

namespace wedge {

/// Bounded exponential backoff for retried protocol messages. The first
/// retry fires `initial_backoff` after the original send; each further
/// retry multiplies the wait, capped at `max_backoff`.
struct RetryPolicy {
  bool enabled = true;
  SimTime initial_backoff = 200 * kMillisecond;
  double multiplier = 2.0;
  SimTime max_backoff = 5 * kSecond;
  /// Give up after this many retries (0 = keep trying forever).
  uint32_t max_attempts = 0;
};

struct EdgeConfig {
  /// Buffer-full threshold: entries per block (the paper's batch size).
  size_t ops_per_block = 100;
  /// Flush a partially filled buffer after this long (0 disables). Keeps
  /// low-rate clients from waiting forever.
  SimTime partial_flush_delay = 50 * kMillisecond;
  /// LSMerkle structure; the paper's evaluation uses thresholds
  /// {10, 10, 100, 1000} (§VI).
  LsmConfig lsm;
  /// Issue a no-op merge when no merge has refreshed the signed global
  /// root for this long (0 disables). Implements the freshness fix of
  /// §V-D for idle periods.
  SimTime noop_merge_period = 0;
  /// Ablation switch: ship the full block alongside the digest in
  /// block-certify messages (i.e. disable data-free certification).
  bool ship_full_blocks = false;
  /// In-memory block bodies retained in the log (0 = unlimited). Evicted
  /// blocks emulate spill to cold storage.
  size_t log_retention_blocks = 0;
  /// Repair missing blocks from the cloud's backup: a read of an evicted
  /// or crash-lost block triggers a backup fetch instead of a negative
  /// response. Requires the cloud to run with backup_blocks.
  bool backup_fetch = false;
  /// Re-send block-certify messages whose proof has not arrived, with
  /// bounded exponential backoff. This is what drains the Phase II
  /// backlog after a cloud outage heals: the cloud treats a re-certify
  /// of an already-known digest as an idempotent duplicate and resends
  /// the proof. The retry timer is armed only while uncertified blocks
  /// exist, so an idle edge schedules nothing.
  RetryPolicy certify_retry;
};

/// Fault-injection switches for edge misbehaviour (paper §IV-E). All off
/// means an honest edge. Tests and the malicious_edge example flip these
/// to prove each attack is detected and punished.
struct EdgeMisbehavior {
  /// Send `victim` an add-response whose block content differs from what
  /// is logged/certified (inconsistent views — equivocation).
  bool equivocate_to_victim = false;
  NodeId victim = kInvalidNodeId;
  /// Answer read requests with "block not available" even when it exists
  /// (omission attack).
  bool omit_reads = false;
  /// Never send block-certify messages (Phase II never completes; clients
  /// dispute after their proof timeout).
  bool drop_certifies = false;
  /// Certify a digest of tampered content instead of the logged block.
  bool certify_tampered = false;
  /// Serve gets from the pre-L0 snapshot, hiding recent writes (staleness;
  /// bounded by the freshness window).
  bool serve_stale_gets = false;
  /// Lie about the value in get responses (detected by proof checks).
  bool tamper_get_value = false;
  /// Withhold the last page of each level run in scan responses
  /// (detected by the scan coverage/adjacency checks).
  bool truncate_scans = false;
  /// Serve gets/scans from a previously captured snapshot (see
  /// EdgeNode::CaptureRollbackSnapshot) — an older-but-valid view whose
  /// proofs all verify. Detected only by clients tracking snapshot
  /// epochs (ClientConfig::monotonic_snapshots, §V-D's session
  /// consistency alternative).
  bool rollback_snapshot = false;
};

struct CloudConfig {
  /// Broadcast signed (edge, log size) gossip to registered clients at
  /// this period (0 disables). §IV-E omission mitigation.
  SimTime gossip_period = 0;
  /// Page split size used in merges; must match the edges' LSMerkle
  /// target_page_pairs.
  size_t target_page_pairs = 100;
  /// Keep full backup copies of edge blocks the cloud happens to see
  /// in full (merge requests; full-block certifies). Powers the
  /// backup-fetch / read-repair path (§II-A: the cloud holds
  /// "potentially a backup of a subset of the data on edge nodes").
  bool backup_blocks = false;
};

struct ClientConfig {
  /// After Phase I, how long to wait for the block-proof before raising a
  /// dispute with the cloud. Should comfortably exceed the edge-cloud RTT
  /// plus certification costs.
  SimTime proof_timeout = 2 * kSecond;
  /// Reject get snapshots older than this (§V-D); negative disables.
  SimTime freshness_window = -1;
  /// Client-side session consistency (§V-D's alternative to the
  /// freshness window): remember the highest certified epoch observed
  /// and reject get/scan responses anchored to an older snapshot. Costs
  /// only one Epoch of client state; catches rollbacks the freshness
  /// window misses when the old root is still inside the window.
  bool monotonic_snapshots = false;
  /// Memoize verified proof material (root/block certificates, level-part
  /// proofs) across reads in a per-client VerifierCache
  /// (lsmerkle/verifier_cache.h). Sound — cache keys bind content, so a
  /// lying edge can only miss — and a large CPU win on read-heavy
  /// workloads. Off reproduces the paper's verify-every-response cost.
  bool verify_cache = true;
  /// Capacity of the verifier cache. On a sharded store this is the
  /// per-shard sizing *unit*: the routing layer scales each physical
  /// client's cache by the key-span its shard owns under the current
  /// ownership epoch (total budget per logical client = unit ×
  /// capacity), so idle shard slots hold almost nothing and a split
  /// hands the moved range's budget to the destination along with the
  /// range.
  VerifierCache::Limits verify_cache_limits;
};

}  // namespace wedge
