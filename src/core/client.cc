#include "core/client.h"

#include <algorithm>

#include "common/logging.h"
#include "lsmerkle/merge.h"

namespace wedge {

WedgeClient::WedgeClient(Executor* exec, Transport* net,
                         const KeyStore* keystore, Signer signer, NodeId edge,
                         NodeId cloud, Dc location, ClientConfig config,
                         CostModel costs)
    : exec_(exec),
      net_(net),
      keystore_(keystore),
      signer_(std::move(signer)),
      sealer_(signer_),
      opener_(keystore, signer_.id()),
      edge_(edge),
      cloud_(cloud),
      location_(location),
      config_(config),
      costs_(costs),
      verifier_cache_(config.verify_cache_limits) {}

void WedgeClient::SendSealed(NodeId to, MsgType type, Bytes body) {
  net_->Send(id(), to, sealer_.Seal(to, type, body));
}

void WedgeClient::AddBatch(std::vector<Bytes> payloads, Phase1Cb on_phase1,
                           Phase2Cb on_phase2) {
  std::vector<Entry> entries;
  entries.reserve(payloads.size());
  for (auto& p : payloads) {
    entries.push_back(Entry::Make(signer_, next_entry_seq_++, std::move(p)));
  }
  SendWrite(MsgType::kAddRequest, std::move(entries), std::move(on_phase1),
            std::move(on_phase2));
}

void WedgeClient::PutBatch(const std::vector<std::pair<Key, Bytes>>& kvs,
                           Phase1Cb on_phase1, Phase2Cb on_phase2) {
  std::vector<Entry> entries;
  entries.reserve(kvs.size());
  for (const auto& [k, v] : kvs) {
    entries.push_back(Entry::Make(signer_, next_entry_seq_++,
                                  EncodePutPayload(k, v)));
  }
  SendWrite(MsgType::kPutRequest, std::move(entries), std::move(on_phase1),
            std::move(on_phase2));
}

void WedgeClient::SendWrite(MsgType type, std::vector<Entry> entries,
                            Phase1Cb cb1, Phase2Cb cb2) {
  AddRequest req;
  req.req_id = next_req_id_++;
  PendingWrite pending;
  pending.sent_at = exec_->Now();
  pending.on_phase1 = std::move(cb1);
  pending.on_phase2 = std::move(cb2);
  for (const auto& e : entries) {
    pending.remaining_entries.emplace_back(e.client, e.seq);
  }
  req.entries = std::move(entries);
  pending_writes_.emplace(req.req_id, std::move(pending));
  // Signing cost is charged as send latency.
  Bytes body = req.Encode();
  exec_->Charge(costs_.client_sign, [this, type, b = std::move(body)]() mutable {
    SendSealed(edge_, type, std::move(b));
  });
}

void WedgeClient::AddReserved(Bytes payload, Phase1Cb on_phase1,
                              Phase2Cb on_phase2) {
  ReserveRequest req;
  req.req_id = next_req_id_++;
  PendingReserve pending;
  pending.payload = std::move(payload);
  pending.on_phase1 = std::move(on_phase1);
  pending.on_phase2 = std::move(on_phase2);
  pending_reserves_.emplace(req.req_id, std::move(pending));
  SendSealed(edge_, MsgType::kReserveRequest, req.Encode());
}

void WedgeClient::ReadBlock(BlockId bid, ReadCb cb) {
  ReadRequest req;
  req.req_id = next_req_id_++;
  req.bid = bid;
  PendingRead pending;
  pending.sent_at = exec_->Now();
  pending.bid = bid;
  pending.cb = std::move(cb);
  pending_reads_.emplace(req.req_id, std::move(pending));
  SendSealed(edge_, MsgType::kReadRequest, req.Encode());
}

void WedgeClient::Get(Key key, GetCb cb) {
  GetRequest req;
  req.req_id = next_req_id_++;
  req.key = key;
  PendingGet pending;
  pending.sent_at = exec_->Now();
  pending.key = key;
  pending.cb = std::move(cb);
  pending_gets_.emplace(req.req_id, std::move(pending));
  SendSealed(edge_, MsgType::kGetRequest, req.Encode());
}

void WedgeClient::GetFromCloud(Key key, GetCb cb) {
  CloudGetRequest req;
  req.req_id = next_req_id_++;
  req.edge = edge_;
  req.key = key;
  PendingCloudGet pending;
  pending.sent_at = exec_->Now();
  pending.key = key;
  pending.edge = edge_;
  pending.cb = std::move(cb);
  pending_cloud_gets_.emplace(req.req_id, std::move(pending));
  SendSealed(cloud_, MsgType::kCloudGetRequest, req.Encode());
}

void WedgeClient::Scan(Key lo, Key hi, ScanCb cb) {
  ScanRequest req;
  req.req_id = next_req_id_++;
  req.lo = lo;
  req.hi = hi;
  PendingScan pending;
  pending.sent_at = exec_->Now();
  pending.lo = lo;
  pending.hi = hi;
  pending.cb = std::move(cb);
  pending_scans_.emplace(req.req_id, std::move(pending));
  SendSealed(edge_, MsgType::kScanRequest, req.Encode());
}

void WedgeClient::OnMessage(NodeId from, Slice payload, SimTime now) {
  auto env = opener_.Open(payload);
  if (!env.ok()) {
    WLOG_DEBUG << "client " << id() << ": dropping message: " << env.status();
    return;
  }
  switch (env->type) {
    case MsgType::kAddResponse:
      HandleAddResponse(from, *env, now);
      break;
    case MsgType::kBlockProof: {
      auto proof = BlockProof::Decode(env->body);
      if (proof.ok()) HandleBlockProof(*proof, now);
      break;
    }
    case MsgType::kReadResponse:
      HandleReadResponse(from, *env, now);
      break;
    case MsgType::kGetResponse:
      HandleGetResponse(*env, now);
      break;
    case MsgType::kCloudGetResponse:
      if (from != cloud_) break;
      HandleCloudGetResponse(*env, now);
      break;
    case MsgType::kScanResponse:
      HandleScanResponse(*env, now);
      break;
    case MsgType::kGossip: {
      if (from != cloud_) break;
      auto g = Gossip::Decode(env->body);
      if (g.ok() && g->edge == edge_ && g->log_size > gossiped_log_size_) {
        gossiped_log_size_ = g->log_size;
      }
      break;
    }
    case MsgType::kReserveResponse: {
      if (from != edge_) break;
      auto resp = ReserveResponse::Decode(env->body);
      if (!resp.ok()) break;
      auto it = pending_reserves_.find(resp->req_id);
      if (it == pending_reserves_.end()) break;
      PendingReserve pending = std::move(it->second);
      pending_reserves_.erase(it);
      // Sign the entry for exactly the reserved position and submit it.
      // Best-effort semantics (§IV-E): a missed slot surfaces through the
      // proof-timeout path and the caller re-reserves.
      Entry e = Entry::MakeReserved(signer_, next_entry_seq_++,
                                    pending.payload, resp->bid, resp->slot);
      AddRequest req;
      req.req_id = next_req_id_++;
      PendingWrite write;
      write.sent_at = now;
      write.remaining_entries.emplace_back(e.client, e.seq);
      write.on_phase1 = std::move(pending.on_phase1);
      write.on_phase2 = std::move(pending.on_phase2);
      req.entries.push_back(std::move(e));
      pending_writes_.emplace(req.req_id, std::move(write));
      Bytes body = req.Encode();
      exec_->Charge(costs_.client_sign,
                    [this, b = std::move(body)]() mutable {
                      SendSealed(edge_, MsgType::kAddRequest, std::move(b));
                    });
      break;
    }
    case MsgType::kDisputeVerdict: {
      if (from != cloud_) break;
      auto v = DisputeVerdict::Decode(env->body);
      if (v.ok() && v->edge_guilty) stats_.disputes_upheld++;
      break;
    }
    default:
      break;
  }
}

void WedgeClient::HandleAddResponse(NodeId from, const Envelope& env,
                                    SimTime now) {
  if (from != edge_) return;
  auto resp = AddResponse::Decode(env.body);
  if (!resp.ok()) return;
  auto it = pending_writes_.find(resp->req_id);
  if (it == pending_writes_.end() || it->second.phase1_done) return;
  PendingWrite& pending = it->second;

  // Cross off the entries this block covers (Algorithm 1 line 4). The
  // signed response is kept as dispute evidence for this block.
  size_t before = pending.remaining_entries.size();
  std::erase_if(pending.remaining_entries,
                [&](const std::pair<NodeId, SeqNum>& id) {
                  return resp->block.Contains(id.first, id.second);
                });
  if (pending.remaining_entries.size() == before) {
    // A response that advances nothing is a lie (our entries are absent).
    stats_.verification_failures++;
    if (pending.on_phase1) {
      pending.on_phase1(
          Status::SecurityViolation("entry missing from echoed block"),
          resp->bid, now);
    }
    pending_writes_.erase(it);
    return;
  }
  if (pending.block_digests.empty()) pending.first_bid = resp->bid;
  pending.block_digests[resp->bid] = resp->block.Digest();
  pending.evidence[resp->bid] = env.raw;
  write_by_bid_[resp->bid].push_back(resp->req_id);

  if (!pending.remaining_entries.empty()) return;  // more blocks to come

  pending.phase1_done = true;
  stats_.phase1_commits++;

  Phase1Cb cb = pending.on_phase1;
  BlockId bid = pending.first_bid;
  if (cb) {
    // Stamp the commit when the callback actually fires: under the
    // simulator that is exactly now + client_verify_add; under threads
    // the charge is a pass-through and pre-adding the modeled cost
    // would stamp Phase I later than a soon-after Phase II.
    Executor* exec = exec_;
    exec_->Charge(costs_.client_verify_add,
                  [cb, bid, exec] { cb(Status::OK(), bid, exec->Now()); });
  }
  ArmProofTimeout(resp->req_id, bid);
}

void WedgeClient::ArmProofTimeout(SeqNum req_id, BlockId bid) {
  if (config_.proof_timeout <= 0) return;
  exec_->After(config_.proof_timeout, [this, req_id, bid] {
    auto it = pending_writes_.find(req_id);
    if (it == pending_writes_.end()) return;  // Phase II already done
    // Proofs still outstanding: escalate each unproven block to the cloud
    // with our signed evidence.
    for (const auto& [b, ev] : it->second.evidence) {
      RaiseDispute(DisputeKind::kAddMismatch, b, ev);
      // Deregister only this write's interest: concurrent writes sharing
      // the block keep waiting for its proof.
      auto bit = write_by_bid_.find(b);
      if (bit != write_by_bid_.end()) {
        auto& reqs = bit->second;
        reqs.erase(std::remove(reqs.begin(), reqs.end(), req_id), reqs.end());
        if (reqs.empty()) write_by_bid_.erase(bit);
      }
    }
    if (it->second.on_phase2) {
      it->second.on_phase2(
          Status::Timeout("no block-proof before timeout; dispute raised"),
          bid, exec_->Now());
    }
    pending_writes_.erase(it);
  });
}

void WedgeClient::HandleBlockProof(const BlockProof& proof, SimTime now) {
  if (!proof.cert.Validate(*keystore_).ok() || proof.cert.edge != edge_) {
    return;
  }
  // Writes waiting on this block — all of them: concurrent writes from
  // this client share blocks, and one certification proof commits every
  // write whose entries it covers.
  auto wit = write_by_bid_.find(proof.cert.bid);
  if (wit != write_by_bid_.end()) {
    const std::vector<SeqNum> reqs = std::move(wit->second);
    write_by_bid_.erase(wit);
    for (SeqNum req : reqs) {
      auto pit = pending_writes_.find(req);
      if (pit == pending_writes_.end()) continue;
      PendingWrite& pending = pit->second;
      auto dit = pending.block_digests.find(proof.cert.bid);
      if (dit == pending.block_digests.end()) continue;
      if (proof.cert.digest == dit->second) {
        pending.block_digests.erase(dit);
        pending.evidence.erase(proof.cert.bid);
        if (pending.phase1_done && pending.block_digests.empty()) {
          // Every involved block certified: Phase II commit.
          stats_.phase2_commits++;
          if (pending.on_phase2) {
            pending.on_phase2(Status::OK(), proof.cert.bid, now);
          }
          pending_writes_.erase(pit);
        }
      } else {
        // The cloud certified a different block for this bid: the edge
        // lied to us at Phase I. Our signed evidence convicts it.
        stats_.proof_mismatches++;
        RaiseDispute(DisputeKind::kAddMismatch, proof.cert.bid,
                     pending.evidence[proof.cert.bid]);
        if (pending.on_phase2) {
          pending.on_phase2(
              Status::MaliciousBehavior("certified digest mismatch"),
              proof.cert.bid, now);
        }
        pending_writes_.erase(pit);
      }
    }
  }
  // Phase I reads waiting on this block.
  auto rit = read_by_bid_.find(proof.cert.bid);
  if (rit != read_by_bid_.end()) {
    auto pit = pending_reads_.find(rit->second);
    if (pit != pending_reads_.end()) {
      PendingRead& pending = pit->second;
      if (proof.cert.digest == pending.block_digest) {
        stats_.reads_ok++;
        if (pending.cb) {
          pending.cb(Status::OK(), pending.block, /*phase2=*/true, now);
        }
      } else {
        stats_.proof_mismatches++;
        RaiseDispute(DisputeKind::kReadMismatch, proof.cert.bid,
                     pending.evidence);
        if (pending.cb) {
          pending.cb(Status::MaliciousBehavior("read block not certified"),
                     pending.block, false, now);
        }
      }
      pending_reads_.erase(pit);
    }
    read_by_bid_.erase(rit);
  }
}

void WedgeClient::HandleReadResponse(NodeId from, const Envelope& env,
                                     SimTime now) {
  if (from != edge_) return;
  auto resp = ReadResponse::Decode(env.body);
  if (!resp.ok()) return;
  auto it = pending_reads_.find(resp->req_id);
  if (it == pending_reads_.end()) return;
  PendingRead& pending = it->second;

  if (!resp->available) {
    // Omission check (§IV-E): gossip told us the log is larger.
    if (gossiped_log_size_ > pending.bid) {
      RaiseDispute(DisputeKind::kOmission, pending.bid, env.raw);
      if (pending.cb) {
        pending.cb(Status::MaliciousBehavior(
                       "edge denies a block the cloud certified"),
                   Block{}, false, now);
      }
    } else if (pending.cb) {
      pending.cb(Status::NotFound("block not available"), Block{}, false, now);
    }
    pending_reads_.erase(it);
    return;
  }

  if (resp->block.id != pending.bid ||
      !resp->block.ValidateReservations().ok()) {
    stats_.verification_failures++;
    if (pending.cb) {
      pending.cb(Status::SecurityViolation(
                     "response block id/reservation check failed"),
                 Block{}, false, now);
    }
    pending_reads_.erase(it);
    return;
  }

  const SimTime verified_at = now + costs_.client_verify_read;
  if (resp->proof.has_value()) {
    // Phase II read: check the cloud signature and the digest.
    Status st = resp->proof->Validate(*keystore_);
    if (st.ok() && resp->proof->edge == edge_ &&
        resp->proof->bid == resp->block.id &&
        resp->proof->digest == resp->block.Digest()) {
      stats_.reads_ok++;
      ReadCb cb = pending.cb;
      Block block = resp->block;
      exec_->Charge(costs_.client_verify_read, [cb, block, verified_at] {
        if (cb) cb(Status::OK(), block, true, verified_at);
      });
    } else {
      stats_.verification_failures++;
      if (pending.cb) {
        pending.cb(Status::SecurityViolation("invalid read proof"), Block{},
                   false, now);
      }
    }
    pending_reads_.erase(it);
    return;
  }

  // Phase I read: deliver now, keep evidence, wait for the proof.
  pending.phase1_done = true;
  pending.block = resp->block;
  pending.block_digest = resp->block.Digest();
  pending.evidence = env.raw;
  read_by_bid_[pending.bid] = resp->req_id;
  ReadCb cb = pending.cb;
  Block block = resp->block;
  exec_->Charge(costs_.client_verify_read, [cb, block, verified_at] {
    if (cb) cb(Status::OK(), block, false, verified_at);
  });
  // The same callback fires again at Phase II (or on mismatch).
}

Status WedgeClient::CheckSnapshotMonotonic(Epoch epoch) {
  if (!config_.monotonic_snapshots) return Status::OK();
  if (epoch < last_snapshot_epoch_) {
    stats_.snapshot_regressions++;
    return Status::SecurityViolation(
        "snapshot regressed: epoch " + std::to_string(epoch) +
        " after observing " + std::to_string(last_snapshot_epoch_));
  }
  last_snapshot_epoch_ = epoch;
  return Status::OK();
}

void WedgeClient::HandleScanResponse(const Envelope& env, SimTime now) {
  auto resp = ScanResponse::Decode(env.body);
  if (!resp.ok()) return;
  auto it = pending_scans_.find(resp->req_id);
  if (it == pending_scans_.end()) return;
  PendingScan pending = std::move(it->second);
  pending_scans_.erase(it);

  const SimTime verified_at = now + costs_.client_verify_read;
  GetVerifyOptions opts;
  opts.now = now;
  opts.freshness_window = config_.freshness_window;
  opts.cache = config_.verify_cache ? &verifier_cache_ : nullptr;
  auto verified = VerifyScanResponse(*keystore_, edge_, pending.lo,
                                     pending.hi, resp->body, opts);
  ScanCb cb = pending.cb;
  if (verified.ok()) {
    const Epoch epoch = resp->body.root_cert.has_value()
                            ? resp->body.root_cert->epoch
                            : 0;
    if (Status mono = CheckSnapshotMonotonic(epoch); !mono.ok()) {
      exec_->Charge(costs_.client_verify_read, [cb, mono, verified_at] {
        if (cb) cb(mono, VerifiedScan{}, verified_at);
      });
      return;
    }
    stats_.scans_ok++;
    VerifiedScan v = std::move(*verified);
    exec_->Charge(costs_.client_verify_read, [cb, v, verified_at] {
      if (cb) cb(Status::OK(), v, verified_at);
    });
  } else {
    if (verified.status().IsFailedPrecondition()) {
      stats_.stale_rejected++;
    } else {
      stats_.verification_failures++;
      // The signed response is self-convicting evidence: the cloud can
      // re-run the completeness verifier on it (the dispute pattern of
      // paper section IV-E, extended to scans).
      RaiseDispute(DisputeKind::kScanTruncation, 0, env.raw);
    }
    Status st = verified.status();
    exec_->Charge(costs_.client_verify_read, [cb, st, verified_at] {
      if (cb) cb(st, VerifiedScan{}, verified_at);
    });
  }
}

void WedgeClient::HandleGetResponse(const Envelope& env, SimTime now) {
  auto resp = GetResponse::Decode(env.body);
  if (!resp.ok()) return;
  auto it = pending_gets_.find(resp->req_id);
  if (it == pending_gets_.end()) return;
  PendingGet pending = std::move(it->second);
  pending_gets_.erase(it);

  const SimTime verified_at = now + costs_.client_verify_read;
  GetVerifyOptions opts;
  opts.now = now;
  opts.freshness_window = config_.freshness_window;
  opts.cache = config_.verify_cache ? &verifier_cache_ : nullptr;
  auto verified =
      VerifyGetResponse(*keystore_, edge_, pending.key, resp->body, opts);
  GetCb cb = pending.cb;
  if (verified.ok()) {
    const Epoch epoch = resp->body.root_cert.has_value()
                            ? resp->body.root_cert->epoch
                            : 0;
    if (Status mono = CheckSnapshotMonotonic(epoch); !mono.ok()) {
      exec_->Charge(costs_.client_verify_read, [cb, mono, verified_at] {
        if (cb) cb(mono, VerifiedGet{}, verified_at);
      });
      return;
    }
    stats_.gets_ok++;
    VerifiedGet v = *verified;
    exec_->Charge(costs_.client_verify_read, [cb, v, verified_at] {
      if (cb) cb(Status::OK(), v, verified_at);
    });
  } else {
    if (verified.status().IsFailedPrecondition()) {
      stats_.stale_rejected++;
    } else {
      stats_.verification_failures++;
    }
    Status st = verified.status();
    exec_->Charge(costs_.client_verify_read, [cb, st, verified_at] {
      if (cb) cb(st, VerifiedGet{}, verified_at);
    });
  }
}

void WedgeClient::HandleCloudGetResponse(const Envelope& env, SimTime now) {
  auto resp = CloudGetResponse::Decode(env.body);
  if (!resp.ok()) return;
  auto it = pending_cloud_gets_.find(resp->req_id);
  if (it == pending_cloud_gets_.end()) return;
  PendingCloudGet pending = std::move(it->second);
  pending_cloud_gets_.erase(it);

  const SimTime verified_at = now + costs_.client_verify_read;
  GetCb cb = pending.cb;
  auto finish = [this, cb, verified_at](const Status& st, VerifiedGet v) {
    exec_->Charge(costs_.client_verify_read, [cb, st, v, verified_at] {
      if (cb) cb(st, v, verified_at);
    });
  };

  if (!resp->found) {
    // Honest miss as far as the cloud knows — but carries no proof of
    // absence (the backup may lag the edge), so it stays unverified.
    finish(Status::OK(), VerifiedGet{});
    return;
  }

  // Trust but verify: the certificate must be the cloud's, must name the
  // edge we asked about, and must pin exactly this block body.
  if (!resp->cert.Validate(*keystore_).ok() ||
      resp->cert.edge != pending.edge || resp->cert.bid != resp->block.id ||
      resp->cert.digest != resp->block.Digest()) {
    stats_.verification_failures++;
    finish(Status::SecurityViolation(
               "cloud get response certificate does not pin the block"),
           VerifiedGet{});
    return;
  }

  // The verified block in hand, extract the newest put of the key
  // ourselves — the cloud's claim that the block answers the get is
  // never trusted bare.
  VerifiedGet v;
  for (const KvPair& p : ExtractKvPairs(resp->block)) {
    if (p.key == pending.key && (!v.found || p.version >= v.version)) {
      v.found = true;
      v.value = p.value;
      v.version = p.version;
    }
  }
  // The body is cloud-certified, so a hit counts as Phase II.
  v.phase2 = v.found;
  if (v.found) stats_.gets_ok++;
  finish(Status::OK(), v);
}

ClientStats& ClientStats::operator+=(const ClientStats& other) {
  phase1_commits += other.phase1_commits;
  phase2_commits += other.phase2_commits;
  reads_ok += other.reads_ok;
  gets_ok += other.gets_ok;
  scans_ok += other.scans_ok;
  proof_mismatches += other.proof_mismatches;
  disputes_sent += other.disputes_sent;
  disputes_upheld += other.disputes_upheld;
  verification_failures += other.verification_failures;
  stale_rejected += other.stale_rejected;
  snapshot_regressions += other.snapshot_regressions;
  return *this;
}

void WedgeClient::RaiseDispute(DisputeKind kind, BlockId bid, Bytes evidence) {
  stats_.disputes_sent++;
  Dispute d;
  d.kind = kind;
  d.edge = edge_;
  d.bid = bid;
  d.evidence = std::move(evidence);
  SendSealed(cloud_, MsgType::kDispute, d.Encode());
}

}  // namespace wedge
