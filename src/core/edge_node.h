// EdgeNode: the (untrusted) edge node of WedgeChain (paper §III–§V).
//
// Request path (foreground lane): batch add/put entries into blocks,
// append to the log, answer immediately with the signed block — Phase I
// commit, no cloud involvement. Serve reads/gets locally with proofs.
//
// Certification path (background lane): send the block *digest* to the
// cloud (data-free), receive the block-proof, forward it to contributing
// clients — Phase II commit. Trigger LSMerkle merges when level
// thresholds are exceeded.
//
// Misbehaviour injection (EdgeMisbehavior) turns this honest
// implementation into each of the §IV-E attackers for tests and examples.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "crypto/signature.h"
#include "log/block_builder.h"
#include "log/edge_log.h"
#include "lsmerkle/lsmerkle_tree.h"
#include "runtime/runtime.h"
#include "simnet/cost_model.h"
#include "storage/edge_storage.h"
#include "wire/message.h"
#include "wire/protocol.h"
#include "wire/session.h"

namespace wedge {

struct EdgeStats {
  uint64_t blocks_formed = 0;
  uint64_t entries_accepted = 0;
  uint64_t replays_rejected = 0;
  uint64_t reads_served = 0;
  uint64_t gets_served = 0;
  uint64_t scans_served = 0;
  uint64_t certifies_sent = 0;
  uint64_t proofs_received = 0;
  uint64_t merges_completed = 0;
  uint64_t noop_merges = 0;
  uint64_t reservation_misses = 0;
  uint64_t storage_writes = 0;
  uint64_t storage_errors = 0;
  uint64_t backup_fetches_sent = 0;
  uint64_t backup_blocks_restored = 0;
  uint64_t repaired_reads = 0;
  uint64_t certify_retries = 0;
  uint64_t state_drops = 0;
};

class EdgeNode : public Endpoint {
 public:
  EdgeNode(Executor* exec, Transport* net, const KeyStore* keystore,
           Signer signer, NodeId cloud, Dc location, EdgeConfig config,
           CostModel costs);

  /// Attaches to the network and starts maintenance timers.
  void Start();

  /// Attaches durable storage (non-owning; must outlive the node). Every
  /// formed block is persisted before its add-response is sent, so a
  /// Phase I promise survives an edge crash; certificates and merges are
  /// logged as they arrive. Call before Start().
  void AttachStorage(EdgeStorage* storage) { storage_ = storage; }

  /// Adopts recovered state after a restart: the durable log, the
  /// LSMerkle tree, replay-protection watermarks, and the consumed-block
  /// counter. The block builder continues from the recovered log end.
  /// Call before Start(). In-flight per-client bookkeeping (proof
  /// forwarding, read waiters) is intentionally not restored — affected
  /// clients recover via their dispute path, fetching certificates from
  /// the cloud after the proof timeout.
  void RestoreState(EdgeStorage::RecoveredState state);

  /// Asks the cloud for backed-up blocks past the local log end, to
  /// repair a tail lost in a crash. Call after Start() when recovery
  /// reported damage (dropped bytes / blocks beyond a gap), and let it
  /// complete BEFORE serving new writes: a new block formed first would
  /// reuse a lost (but cloud-certified) block id with different content
  /// — indistinguishable from equivocation, and punished as such.
  /// Repaired kv blocks past the consumed prefix are re-applied to L0.
  void RequestBackupSync();

  /// Simulates the memory loss of a fail-stop crash: wipes the log, the
  /// LSMerkle tree, buffered entries, per-client bookkeeping and replay
  /// watermarks, leaving the node object constructed and attached. Any
  /// armed timers from before the drop are neutralized (generation
  /// guard). Recovery afterwards is either RestoreState (durable
  /// storage) or RequestBackupSync (full replay of the cloud's backup
  /// log — rebuilds L0 only, so an edge with completed merges must
  /// restore its levels from durable storage first). Must run on the
  /// node's executor.
  void DropVolatileState();

  /// Saves a copy of the current tree+log; with
  /// misbehavior().rollback_snapshot set, gets and scans are then served
  /// from this old-but-internally-valid view (the snapshot-rollback
  /// attacker that session consistency catches). Test/example hook.
  void CaptureRollbackSnapshot();

  NodeId id() const { return signer_.id(); }
  Dc location() const { return location_; }

  void OnMessage(NodeId from, Slice payload, SimTime now) override;

  const EdgeStats& stats() const { return stats_; }
  const EdgeLog& log() const { return log_; }
  const LsmerkleTree& lsm() const { return lsm_; }
  EdgeMisbehavior& misbehavior() { return misbehavior_; }

 private:
  struct Contribution {
    NodeId client;
    SeqNum req_id;
  };

  void HandleWrite(NodeId from, const AddRequest& req, bool is_kv,
                   SimTime now);
  void FormBlock(bool is_kv, SimTime now);
  void FinishBlock(Block block, bool is_kv, SimTime now);
  void HandleRead(NodeId from, const ReadRequest& req, SimTime now);
  void HandleGet(NodeId from, const GetRequest& req, SimTime now);
  void HandleScan(NodeId from, const ScanRequest& req, SimTime now);
  void HandleReserve(NodeId from, const ReserveRequest& req, SimTime now);
  void HandleBlockProof(const BlockProof& proof, SimTime now);
  void HandleMergeResponse(const MergeResponse& resp, SimTime now);
  void HandleBackupBlocks(const BackupBlocks& resp, SimTime now);
  void MaybeStartMerge(SimTime now, bool noop);
  void ScheduleFlushTimer();
  void ScheduleNoopTimer();
  void ScheduleCertifyRetry();
  void ResendPendingCertifies();

  GetResponseBody AssembleGetResponse(Key key) const;

  void SendSealed(NodeId to, MsgType type, Bytes body);

  Executor* exec_;
  Transport* net_;
  const KeyStore* keystore_;
  Signer signer_;
  // Session channels (v2 envelopes). Initialized from signer_/keystore_;
  // counters are durable identity state, not volatile protocol state.
  SessionSealer sealer_;
  SessionOpener opener_;
  NodeId cloud_;
  Dc location_;
  EdgeConfig config_;
  CostModel costs_;
  EdgeMisbehavior misbehavior_;

  std::unique_ptr<Lane> fg_;  // request path
  std::unique_ptr<Lane> bg_;  // certification pipeline + merge prep

  BlockBuilder builder_;
  EdgeLog log_;
  LsmerkleTree lsm_;

  /// Contributors of the block currently being buffered.
  std::vector<Contribution> buffer_contribs_;
  /// Contributors per formed block, for proof forwarding.
  std::unordered_map<BlockId, std::vector<Contribution>> block_contribs_;
  /// Clients whose Phase I reads await the block-proof.
  std::unordered_map<BlockId, std::vector<NodeId>> read_waiters_;
  /// Reads parked on a backup fetch of a missing block: bid -> readers.
  std::unordered_map<BlockId, std::vector<std::pair<NodeId, SeqNum>>>
      repair_waiters_;
  /// Frozen (tree, log) copy for the rollback-snapshot attacker.
  std::optional<std::pair<LsmerkleTree, EdgeLog>> rollback_state_;
  /// Replay protection: highest sequence number seen per client.
  std::unordered_map<NodeId, SeqNum> last_seq_;
  /// Whether the buffered entries are puts (kv) or raw adds. Mixed
  /// buffers are flushed on transition.
  bool buffer_is_kv_ = false;

  uint64_t flush_generation_ = 0;
  SimTime last_merge_time_ = 0;

  /// Blocks certified but not yet proven: digest+kind per block id, so a
  /// retry can reconstruct the exact BlockCertify it first sent (the
  /// cloud punishes a changed digest as equivocation).
  struct PendingCertify {
    Digest256 digest;
    bool is_kv = false;
  };
  std::map<BlockId, PendingCertify> pending_certify_;
  SimTime retry_backoff_ = 0;
  uint32_t retry_attempts_ = 0;
  bool retry_timer_armed_ = false;
  /// Bumped by DropVolatileState so timers armed pre-crash no-op.
  uint64_t restart_generation_ = 0;

  /// Optional durability (null = in-memory only, the paper's setting).
  EdgeStorage* storage_ = nullptr;
  /// Cumulative blocks consumed from L0 by merges (manifest counter).
  /// Counts every block — raw appends occupy L0 slots too, as pair-less
  /// units, so the proof-visible block id stream stays contiguous.
  uint64_t l0_blocks_consumed_ = 0;
  /// Total blocks ever appended to the log; a block's ordinal decides
  /// whether it belongs in L0 (ordinal > consumed) when restored from
  /// backup.
  uint64_t l0_blocks_seen_ = 0;

  EdgeStats stats_;
};

}  // namespace wedge
