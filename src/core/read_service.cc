#include "core/read_service.h"

#include <map>

namespace wedge {

GetResponseBody AssembleGetResponse(const LsmerkleTree& lsm,
                                    const EdgeLog& log, Key key,
                                    bool hide_l0) {
  GetResponseBody body;
  body.key = key;

  LsmerkleTree::FindResult r;
  if (hide_l0) {
    for (size_t i = 1; i < lsm.level_count(); ++i) {
      const LevelState& level = lsm.level(i);
      if (level.empty()) continue;
      auto idx = level.FindPageIndex(key);
      if (!idx.ok()) continue;
      auto hit = level.pages()[*idx].Find(key);
      if (hit.has_value()) {
        r.found = true;
        r.pair = *hit;
        r.level = static_cast<uint32_t>(i);
        break;
      }
    }
  } else {
    r = lsm.Lookup(key);
  }
  body.found = r.found;
  body.found_level = r.level;
  if (r.found) {
    body.value = r.pair.value;
    body.version = r.pair.version;
  }

  if (!hide_l0) {
    // Blocks are shared from the tree, not copied: the response only
    // holds references until it is encoded onto the wire.
    for (const auto& unit : lsm.l0_units()) {
      body.l0_blocks.push_back(unit.block);
      body.l0_certs.push_back(log.GetCertificate(unit.block->id));
    }
  }

  const uint32_t deepest =
      r.found ? r.level : static_cast<uint32_t>(lsm.level_count() - 1);
  for (uint32_t lvl = 1; lvl <= deepest; ++lvl) {
    const LevelState& level = lsm.level(lvl);
    if (level.empty()) continue;
    auto idx = level.FindPageIndex(key);
    if (!idx.ok()) continue;
    GetLevelPart part;
    part.level = lvl;
    part.page = level.SharedPage(*idx);          // zero-copy
    part.proof = *level.ProvePage(*idx);         // precomputed at SetPages
    body.parts.push_back(std::move(part));
  }
  body.level_roots = lsm.LevelRoots();
  if (lsm.root_cert().has_value()) body.root_cert = lsm.root_cert();
  return body;
}

ScanResponseBody AssembleScanResponse(const LsmerkleTree& lsm,
                                      const EdgeLog& log, Key lo, Key hi,
                                      bool drop_last_run_page) {
  ScanResponseBody body;
  body.lo = lo;
  body.hi = hi;

  // Evidence: every L0 block (any may hold range keys), plus per level
  // the adjacent page run covering [lo, hi].
  std::map<Key, KvPair> newest;
  for (const auto& unit : lsm.l0_units()) {
    body.l0_blocks.push_back(unit.block);
    body.l0_certs.push_back(log.GetCertificate(unit.block->id));
    for (const KvPair& kv : unit.pairs) {
      if (kv.key < lo || kv.key > hi) continue;
      auto it = newest.find(kv.key);
      if (it == newest.end() || it->second.version < kv.version) {
        newest[kv.key] = kv;
      }
    }
  }
  const auto l0_keys = newest;

  for (uint32_t lvl = 1; lvl < lsm.level_count(); ++lvl) {
    const LevelState& level = lsm.level(lvl);
    if (level.empty()) continue;
    auto start = level.FindPageIndex(lo);
    if (!start.ok()) continue;
    ScanLevelRun run;
    run.level = lvl;
    for (size_t idx = *start; idx < level.page_count(); ++idx) {
      const Page& page = level.pages()[idx];
      if (page.min_key > hi) break;
      run.pages.push_back(level.SharedPage(idx));  // zero-copy
      run.proofs.push_back(*level.ProvePage(idx));
      for (const KvPair& kv : page.pairs) {
        if (kv.key < lo || kv.key > hi) continue;
        if (l0_keys.count(kv.key) != 0) continue;
        newest.emplace(kv.key, kv);  // lower level = newer, first wins
      }
    }
    if (drop_last_run_page && run.pages.size() > 1) {
      run.pages.pop_back();
      run.proofs.pop_back();
    }
    body.runs.push_back(std::move(run));
  }

  body.pairs.reserve(newest.size());
  for (auto& [key, pair] : newest) body.pairs.push_back(pair);
  body.level_roots = lsm.LevelRoots();
  if (lsm.root_cert().has_value()) body.root_cert = lsm.root_cert();
  return body;
}

}  // namespace wedge
