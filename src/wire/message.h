// Message types and the signed envelope.
//
// Every WedgeChain message travels inside an Envelope: a type tag, an
// opaque body, and the sender's signature over (type || body) — the paper
// requires all message exchanges to be signed (§IV-A). The raw envelope
// bytes double as dispute evidence: a client that kept an edge's signed
// response can later prove exactly what the edge said.

#pragma once

#include <cstdint>
#include <string_view>

#include "common/codec.h"
#include "common/result.h"
#include "crypto/signature.h"

namespace wedge {

enum class MsgType : uint8_t {
  // -------- WedgeChain logging (§IV) --------
  kAddRequest = 1,
  kAddResponse = 2,
  kReadRequest = 3,
  kReadResponse = 4,
  kBlockCertify = 5,   // edge -> cloud (digest only: data-free)
  kBlockProof = 6,     // cloud -> edge -> clients
  kCertifyReject = 7,  // cloud -> edge: equivocation detected

  // -------- LSMerkle key-value (§V) --------
  kPutRequest = 8,   // same body as kAddRequest; payloads encode puts
  kGetRequest = 9,
  kGetResponse = 10,
  kMergeRequest = 11,   // edge -> cloud (ships pages: the amortized cost)
  kMergeResponse = 12,  // cloud -> edge

  // -------- maintenance & security (§IV-E, §V-D) --------
  kGossip = 13,           // cloud -> clients: signed (edge, log size, time)
  kDispute = 14,          // client -> cloud, with evidence
  kDisputeVerdict = 15,   // cloud -> client
  kReserveRequest = 16,   // client -> edge: reserve a log position
  kReserveResponse = 17,  // edge -> client

  // -------- baselines (§II-C, §VI) --------
  kCloudWriteRequest = 18,   // cloud-only: client -> cloud
  kCloudWriteResponse = 19,
  kCloudReadRequest = 20,
  kCloudReadResponse = 21,
  kEbWriteRequest = 22,   // edge-baseline: client -> edge
  kEbWriteResponse = 23,
  kEbCertify = 24,          // edge-baseline: edge -> cloud (full data)
  kEbCertifyResponse = 25,  // cloud -> edge (certs + merged pages)

  // -------- cloud backup & read repair (§II-A backup note) --------
  kBackupFetch = 26,   // edge -> cloud: blocks lost/evicted at the edge
  kBackupBlocks = 27,  // cloud -> edge: backed-up blocks + certificates

  // -------- verifiable range scans (extension) --------
  kScanRequest = 28,   // client -> edge (also client -> cloud-only server)
  kScanResponse = 29,  // edge -> client, proof-carrying
  kCloudScanResponse = 30,  // cloud-only: trusted scan result, no proofs

  // -------- failure-aware routing (fault plane) --------
  kCloudGetRequest = 31,   // client -> cloud: get served from the backup
  kCloudGetResponse = 32,  // cloud -> client: newest backed-up block + cert

  // Keep in sync when adding values: Parse() rejects type bytes above
  // this bound.
  kMaxMsgType = kCloudGetResponse,
};

std::string_view MsgTypeToString(MsgType type);

/// A parsed envelope. `raw` holds the exact bytes received, suitable for
/// storage as dispute evidence.
struct Envelope {
  MsgType type = MsgType::kAddRequest;
  NodeId sender = kInvalidNodeId;
  Bytes body;
  Bytes raw;

  /// Serializes and signs a message: [type u8][body bytes][signature].
  static Bytes Seal(const Signer& signer, MsgType type, Bytes body);

  /// Parses and verifies an envelope. SecurityViolation on a bad
  /// signature; Corruption on malformed bytes.
  static Result<Envelope> Open(const KeyStore& keystore, Slice wire);

  /// Parses without verifying the signature.
  static Result<Envelope> OpenUnverified(Slice wire);

  /// Like Open but accepts signatures from revoked identities; used when
  /// adjudicating dispute evidence signed before a revocation.
  static Result<Envelope> OpenHistorical(const KeyStore& keystore,
                                         Slice wire);
};

}  // namespace wedge
