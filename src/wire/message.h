// Message types and the signed envelope.
//
// Every WedgeChain message travels inside an Envelope — the paper
// requires all message exchanges to be signed (§IV-A). The raw envelope
// bytes double as dispute evidence: a client that kept an edge's signed
// response can later prove exactly what the edge said.
//
// Two wire formats coexist:
//   v1 (identity-signed):  [type u8][body][Signature: signer u32 + tag32]
//       The tag is an identity-key HMAC over (type || body).
//   v2 (session-sealed):   [0xD2][type u8][sender u32][receiver u32]
//                          [counter u64][body][mac32]
//       The tag is a MAC under the directed per-(sender, receiver)
//       session key (see KeyStore::SessionKeyFor) over everything before
//       it. The counter is per-connection monotonic: SessionOpener
//       rejects any counter <= the last accepted one, which excludes
//       replay and rollback while tolerating drops (forward gaps are
//       legitimate — the fault plane loses messages).
// The v2 magic 0xD2 lies above kMaxMsgType, so v1-only parsers reject
// v2 envelopes as Corruption instead of misreading them; every parser
// here accepts both formats.

#pragma once

#include <cstdint>
#include <string_view>

#include "common/codec.h"
#include "common/result.h"
#include "crypto/signature.h"

namespace wedge {

enum class MsgType : uint8_t {
  // -------- WedgeChain logging (§IV) --------
  kAddRequest = 1,
  kAddResponse = 2,
  kReadRequest = 3,
  kReadResponse = 4,
  kBlockCertify = 5,   // edge -> cloud (digest only: data-free)
  kBlockProof = 6,     // cloud -> edge -> clients
  kCertifyReject = 7,  // cloud -> edge: equivocation detected

  // -------- LSMerkle key-value (§V) --------
  kPutRequest = 8,   // same body as kAddRequest; payloads encode puts
  kGetRequest = 9,
  kGetResponse = 10,
  kMergeRequest = 11,   // edge -> cloud (ships pages: the amortized cost)
  kMergeResponse = 12,  // cloud -> edge

  // -------- maintenance & security (§IV-E, §V-D) --------
  kGossip = 13,           // cloud -> clients: signed (edge, log size, time)
  kDispute = 14,          // client -> cloud, with evidence
  kDisputeVerdict = 15,   // cloud -> client
  kReserveRequest = 16,   // client -> edge: reserve a log position
  kReserveResponse = 17,  // edge -> client

  // -------- baselines (§II-C, §VI) --------
  kCloudWriteRequest = 18,   // cloud-only: client -> cloud
  kCloudWriteResponse = 19,
  kCloudReadRequest = 20,
  kCloudReadResponse = 21,
  kEbWriteRequest = 22,   // edge-baseline: client -> edge
  kEbWriteResponse = 23,
  kEbCertify = 24,          // edge-baseline: edge -> cloud (full data)
  kEbCertifyResponse = 25,  // cloud -> edge (certs + merged pages)

  // -------- cloud backup & read repair (§II-A backup note) --------
  kBackupFetch = 26,   // edge -> cloud: blocks lost/evicted at the edge
  kBackupBlocks = 27,  // cloud -> edge: backed-up blocks + certificates

  // -------- verifiable range scans (extension) --------
  kScanRequest = 28,   // client -> edge (also client -> cloud-only server)
  kScanResponse = 29,  // edge -> client, proof-carrying
  kCloudScanResponse = 30,  // cloud-only: trusted scan result, no proofs

  // -------- failure-aware routing (fault plane) --------
  kCloudGetRequest = 31,   // client -> cloud: get served from the backup
  kCloudGetResponse = 32,  // cloud -> client: newest backed-up block + cert

  // Keep in sync when adding values: Parse() rejects type bytes above
  // this bound.
  kMaxMsgType = kCloudGetResponse,
};

std::string_view MsgTypeToString(MsgType type);

/// First byte of a v2 session-sealed envelope. Above kMaxMsgType by a
/// wide margin so the two formats cannot be confused.
inline constexpr uint8_t kSessionEnvelopeMagic = 0xD2;

/// A parsed envelope. `raw` holds the exact bytes received, suitable for
/// storage as dispute evidence. `receiver`/`counter` are only meaningful
/// when `sessioned` (v2 format).
struct Envelope {
  MsgType type = MsgType::kAddRequest;
  NodeId sender = kInvalidNodeId;
  NodeId receiver = kInvalidNodeId;
  uint64_t counter = 0;
  bool sessioned = false;
  Bytes body;
  Bytes raw;

  /// Serializes and signs a v1 message: [type u8][body bytes][signature].
  /// Kept for compatibility and for contexts with no session state; the
  /// hot paths seal with SessionSealer (wire/session.h).
  static Bytes Seal(const Signer& signer, MsgType type, Bytes body);

  /// Parses and verifies an envelope of either format. For v2 this
  /// checks the session MAC and sender revocation but holds no
  /// connection state — replay/counter enforcement needs SessionOpener.
  /// SecurityViolation on a bad tag; Corruption on malformed bytes.
  static Result<Envelope> Open(const KeyStore& keystore, Slice wire);

  /// Parses either format without verifying the tag.
  static Result<Envelope> OpenUnverified(Slice wire);

  /// Like Open but accepts tags from revoked identities; used when
  /// adjudicating dispute evidence signed before a revocation. v2
  /// evidence embeds (sender, receiver), so the directory can re-derive
  /// the session key without any connection state.
  static Result<Envelope> OpenHistorical(const KeyStore& keystore,
                                         Slice wire);
};

}  // namespace wedge
