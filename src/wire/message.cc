#include "wire/message.h"

namespace wedge {

std::string_view MsgTypeToString(MsgType type) {
  switch (type) {
    case MsgType::kAddRequest:
      return "AddRequest";
    case MsgType::kAddResponse:
      return "AddResponse";
    case MsgType::kReadRequest:
      return "ReadRequest";
    case MsgType::kReadResponse:
      return "ReadResponse";
    case MsgType::kBlockCertify:
      return "BlockCertify";
    case MsgType::kBlockProof:
      return "BlockProof";
    case MsgType::kCertifyReject:
      return "CertifyReject";
    case MsgType::kPutRequest:
      return "PutRequest";
    case MsgType::kGetRequest:
      return "GetRequest";
    case MsgType::kGetResponse:
      return "GetResponse";
    case MsgType::kMergeRequest:
      return "MergeRequest";
    case MsgType::kMergeResponse:
      return "MergeResponse";
    case MsgType::kGossip:
      return "Gossip";
    case MsgType::kDispute:
      return "Dispute";
    case MsgType::kDisputeVerdict:
      return "DisputeVerdict";
    case MsgType::kReserveRequest:
      return "ReserveRequest";
    case MsgType::kReserveResponse:
      return "ReserveResponse";
    case MsgType::kCloudWriteRequest:
      return "CloudWriteRequest";
    case MsgType::kCloudWriteResponse:
      return "CloudWriteResponse";
    case MsgType::kCloudReadRequest:
      return "CloudReadRequest";
    case MsgType::kCloudReadResponse:
      return "CloudReadResponse";
    case MsgType::kEbWriteRequest:
      return "EbWriteRequest";
    case MsgType::kEbWriteResponse:
      return "EbWriteResponse";
    case MsgType::kEbCertify:
      return "EbCertify";
    case MsgType::kEbCertifyResponse:
      return "EbCertifyResponse";
    case MsgType::kBackupFetch:
      return "BackupFetch";
    case MsgType::kBackupBlocks:
      return "BackupBlocks";
    case MsgType::kScanRequest:
      return "ScanRequest";
    case MsgType::kScanResponse:
      return "ScanResponse";
    case MsgType::kCloudScanResponse:
      return "CloudScanResponse";
    case MsgType::kCloudGetRequest:
      return "CloudGetRequest";
    case MsgType::kCloudGetResponse:
      return "CloudGetResponse";
  }
  return "Unknown";
}

Bytes Envelope::Seal(const Signer& signer, MsgType type, Bytes body) {
  Encoder signed_part;
  signed_part.PutU8(static_cast<uint8_t>(type));
  signed_part.PutBytes(body);
  Signature sig = signer.Sign(signed_part.buffer());

  Encoder out;
  out.PutRaw(signed_part.buffer());
  sig.EncodeTo(&out);
  return out.TakeBuffer();
}

namespace {
Result<Envelope> Parse(Slice wire) {
  Decoder dec(wire);
  Envelope env;
  uint8_t type_byte = 0;
  WEDGE_ASSIGN_OR_RETURN(type_byte, dec.GetU8());
  if (type_byte < 1 ||
      type_byte > static_cast<uint8_t>(MsgType::kMaxMsgType)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(type_byte));
  }
  env.type = static_cast<MsgType>(type_byte);
  WEDGE_ASSIGN_OR_RETURN(env.body, dec.GetBytes());
  Signature sig;
  WEDGE_ASSIGN_OR_RETURN(sig, Signature::DecodeFrom(&dec));
  WEDGE_RETURN_NOT_OK(dec.ExpectDone());
  env.sender = sig.signer;
  env.raw = wire.ToBytes();
  return env;
}

Bytes SignedPart(const Envelope& env) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(env.type));
  enc.PutBytes(env.body);
  return enc.TakeBuffer();
}

Result<Signature> ExtractSignature(Slice wire) {
  // The signature is the trailing 36 bytes (u32 signer + 32-byte tag).
  if (wire.size() < 36) return Status::Corruption("envelope too short");
  Decoder dec(Slice(wire.data() + wire.size() - 36, 36));
  return Signature::DecodeFrom(&dec);
}
}  // namespace

Result<Envelope> Envelope::Open(const KeyStore& keystore, Slice wire) {
  auto env = Parse(wire);
  if (!env.ok()) return env.status();
  auto sig = ExtractSignature(wire);
  if (!sig.ok()) return sig.status();
  WEDGE_RETURN_NOT_OK(keystore.Verify(*sig, SignedPart(*env)));
  return env;
}

Result<Envelope> Envelope::OpenUnverified(Slice wire) { return Parse(wire); }

Result<Envelope> Envelope::OpenHistorical(const KeyStore& keystore,
                                          Slice wire) {
  auto env = Parse(wire);
  if (!env.ok()) return env.status();
  auto sig = ExtractSignature(wire);
  if (!sig.ok()) return sig.status();
  WEDGE_RETURN_NOT_OK(keystore.VerifyHistorical(*sig, SignedPart(*env)));
  return env;
}

}  // namespace wedge
