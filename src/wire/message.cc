#include "wire/message.h"

namespace wedge {

std::string_view MsgTypeToString(MsgType type) {
  switch (type) {
    case MsgType::kAddRequest:
      return "AddRequest";
    case MsgType::kAddResponse:
      return "AddResponse";
    case MsgType::kReadRequest:
      return "ReadRequest";
    case MsgType::kReadResponse:
      return "ReadResponse";
    case MsgType::kBlockCertify:
      return "BlockCertify";
    case MsgType::kBlockProof:
      return "BlockProof";
    case MsgType::kCertifyReject:
      return "CertifyReject";
    case MsgType::kPutRequest:
      return "PutRequest";
    case MsgType::kGetRequest:
      return "GetRequest";
    case MsgType::kGetResponse:
      return "GetResponse";
    case MsgType::kMergeRequest:
      return "MergeRequest";
    case MsgType::kMergeResponse:
      return "MergeResponse";
    case MsgType::kGossip:
      return "Gossip";
    case MsgType::kDispute:
      return "Dispute";
    case MsgType::kDisputeVerdict:
      return "DisputeVerdict";
    case MsgType::kReserveRequest:
      return "ReserveRequest";
    case MsgType::kReserveResponse:
      return "ReserveResponse";
    case MsgType::kCloudWriteRequest:
      return "CloudWriteRequest";
    case MsgType::kCloudWriteResponse:
      return "CloudWriteResponse";
    case MsgType::kCloudReadRequest:
      return "CloudReadRequest";
    case MsgType::kCloudReadResponse:
      return "CloudReadResponse";
    case MsgType::kEbWriteRequest:
      return "EbWriteRequest";
    case MsgType::kEbWriteResponse:
      return "EbWriteResponse";
    case MsgType::kEbCertify:
      return "EbCertify";
    case MsgType::kEbCertifyResponse:
      return "EbCertifyResponse";
    case MsgType::kBackupFetch:
      return "BackupFetch";
    case MsgType::kBackupBlocks:
      return "BackupBlocks";
    case MsgType::kScanRequest:
      return "ScanRequest";
    case MsgType::kScanResponse:
      return "ScanResponse";
    case MsgType::kCloudScanResponse:
      return "CloudScanResponse";
    case MsgType::kCloudGetRequest:
      return "CloudGetRequest";
    case MsgType::kCloudGetResponse:
      return "CloudGetResponse";
  }
  return "Unknown";
}

Bytes Envelope::Seal(const Signer& signer, MsgType type, Bytes body) {
  Encoder signed_part;
  signed_part.PutU8(static_cast<uint8_t>(type));
  signed_part.PutBytes(body);
  Signature sig = signer.Sign(signed_part.buffer());

  Encoder out;
  out.PutRaw(signed_part.buffer());
  sig.EncodeTo(&out);
  return out.TakeBuffer();
}

namespace {

Result<MsgType> CheckType(uint8_t type_byte) {
  if (type_byte < 1 ||
      type_byte > static_cast<uint8_t>(MsgType::kMaxMsgType)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(type_byte));
  }
  return static_cast<MsgType>(type_byte);
}

// v2: [magic][type u8][sender u32][receiver u32][counter u64][body][mac32]
Result<Envelope> ParseSession(Slice wire) {
  Decoder dec(wire);
  Envelope env;
  env.sessioned = true;
  WEDGE_RETURN_NOT_OK(dec.GetU8().status());  // magic, checked by caller
  uint8_t type_byte = 0;
  WEDGE_ASSIGN_OR_RETURN(type_byte, dec.GetU8());
  WEDGE_ASSIGN_OR_RETURN(env.type, CheckType(type_byte));
  WEDGE_ASSIGN_OR_RETURN(env.sender, dec.GetU32());
  WEDGE_ASSIGN_OR_RETURN(env.receiver, dec.GetU32());
  WEDGE_ASSIGN_OR_RETURN(env.counter, dec.GetU64());
  WEDGE_ASSIGN_OR_RETURN(env.body, dec.GetBytes());
  WEDGE_RETURN_NOT_OK(dec.GetRaw(32).status());  // mac
  WEDGE_RETURN_NOT_OK(dec.ExpectDone());
  env.raw = wire.ToBytes();
  return env;
}

Result<Envelope> Parse(Slice wire) {
  if (!wire.empty() && wire[0] == kSessionEnvelopeMagic) {
    return ParseSession(wire);
  }
  Decoder dec(wire);
  Envelope env;
  uint8_t type_byte = 0;
  WEDGE_ASSIGN_OR_RETURN(type_byte, dec.GetU8());
  WEDGE_ASSIGN_OR_RETURN(env.type, CheckType(type_byte));
  WEDGE_ASSIGN_OR_RETURN(env.body, dec.GetBytes());
  Signature sig;
  WEDGE_ASSIGN_OR_RETURN(sig, Signature::DecodeFrom(&dec));
  WEDGE_RETURN_NOT_OK(dec.ExpectDone());
  env.sender = sig.signer;
  env.raw = wire.ToBytes();
  return env;
}

Bytes SignedPart(const Envelope& env) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(env.type));
  enc.PutBytes(env.body);
  return enc.TakeBuffer();
}

Result<Signature> ExtractSignature(Slice wire) {
  // The signature is the trailing 36 bytes (u32 signer + 32-byte tag).
  if (wire.size() < 36) return Status::Corruption("envelope too short");
  Decoder dec(Slice(wire.data() + wire.size() - 36, 36));
  return Signature::DecodeFrom(&dec);
}

// Checks the v2 MAC (everything before the trailing 32 bytes) against
// the session key the directory derives for (sender, receiver).
// `historical` skips the revocation check for dispute adjudication.
Status VerifySessionTag(const KeyStore& keystore, const Envelope& env,
                        Slice wire, bool historical) {
  if (!historical && keystore.IsRevoked(env.sender)) {
    return Status::FailedPrecondition("sender " + std::to_string(env.sender) +
                                      " has been revoked");
  }
  Sha256Digest key;
  WEDGE_ASSIGN_OR_RETURN(key,
                         keystore.SessionKeyFor(env.sender, env.receiver));
  HmacKey session(Slice(key.data(), key.size()));
  Sha256Digest expect = session.Mac(Slice(wire.data(), wire.size() - 32));
  if (!CryptoEqual(Slice(expect.data(), expect.size()),
                   Slice(wire.data() + wire.size() - 32, 32))) {
    return Status::SecurityViolation("session MAC verification failed for " +
                                     std::to_string(env.sender));
  }
  return Status::OK();
}

}  // namespace

Result<Envelope> Envelope::Open(const KeyStore& keystore, Slice wire) {
  auto env = Parse(wire);
  if (!env.ok()) return env.status();
  if (env->sessioned) {
    WEDGE_RETURN_NOT_OK(
        VerifySessionTag(keystore, *env, wire, /*historical=*/false));
    return env;
  }
  auto sig = ExtractSignature(wire);
  if (!sig.ok()) return sig.status();
  WEDGE_RETURN_NOT_OK(keystore.Verify(*sig, SignedPart(*env)));
  return env;
}

Result<Envelope> Envelope::OpenUnverified(Slice wire) { return Parse(wire); }

Result<Envelope> Envelope::OpenHistorical(const KeyStore& keystore,
                                          Slice wire) {
  auto env = Parse(wire);
  if (!env.ok()) return env.status();
  if (env->sessioned) {
    WEDGE_RETURN_NOT_OK(
        VerifySessionTag(keystore, *env, wire, /*historical=*/true));
    return env;
  }
  auto sig = ExtractSignature(wire);
  if (!sig.ok()) return sig.status();
  WEDGE_RETURN_NOT_OK(keystore.VerifyHistorical(*sig, SignedPart(*env)));
  return env;
}

}  // namespace wedge
