#include "wire/session.h"

namespace wedge {

Bytes SessionSealer::Seal(NodeId receiver, MsgType type, const Bytes& body) {
  auto [it, inserted] = channels_.try_emplace(receiver);
  if (inserted) {
    Sha256Digest key = signer_.SessionKeyTo(receiver);
    it->second.key = HmacKey(Slice(key.data(), key.size()));
  }
  const uint64_t counter = it->second.next_counter++;

  Encoder enc;
  enc.PutU8(kSessionEnvelopeMagic);
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU32(signer_.id());
  enc.PutU32(receiver);
  enc.PutU64(counter);
  enc.PutBytes(body);
  Sha256Digest mac = it->second.key.Mac(enc.buffer());
  enc.PutRaw(Slice(mac.data(), mac.size()));
  return enc.TakeBuffer();
}

Result<Envelope> SessionOpener::Open(Slice wire) {
  Envelope env;
  WEDGE_ASSIGN_OR_RETURN(env, Envelope::OpenUnverified(wire));
  if (!env.sessioned) {
    // v1: fall back to the stateless identity-signature check.
    return Envelope::Open(*keystore_, wire);
  }
  if (env.receiver != self_) {
    return Status::SecurityViolation(
        "session envelope for " + std::to_string(env.receiver) +
        " delivered to " + std::to_string(self_));
  }
  if (keystore_->IsRevoked(env.sender)) {
    return Status::FailedPrecondition("sender " + std::to_string(env.sender) +
                                      " has been revoked");
  }

  auto [it, inserted] = peers_.try_emplace(env.sender);
  if (inserted) {
    Sha256Digest key;
    auto derived = keystore_->SessionKeyFor(env.sender, self_);
    if (!derived.ok()) {
      peers_.erase(it);
      return derived.status();
    }
    key = *derived;
    it->second.key = HmacKey(Slice(key.data(), key.size()));
  }

  Sha256Digest expect =
      it->second.key.Mac(Slice(wire.data(), wire.size() - 32));
  if (!CryptoEqual(Slice(expect.data(), expect.size()),
                   Slice(wire.data() + wire.size() - 32, 32))) {
    return Status::SecurityViolation("session MAC verification failed for " +
                                     std::to_string(env.sender));
  }

  // Counter discipline: strictly increasing per peer. A gap just means
  // drops in flight; equal-or-below means replay or rollback.
  if (env.counter <= it->second.last_counter) {
    return Status::SecurityViolation(
        "session counter replay from " + std::to_string(env.sender) +
        ": got " + std::to_string(env.counter) + ", last accepted " +
        std::to_string(it->second.last_counter));
  }
  it->second.last_counter = env.counter;
  return env;
}

}  // namespace wedge
