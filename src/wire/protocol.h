// Bodies of all protocol messages. Each struct provides EncodeTo /
// DecodeFrom plus Encode()/Decode() helpers; the envelope (message.h)
// handles signing.

#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/codec.h"
#include "common/types.h"
#include "log/block.h"
#include "log/certificate.h"
#include "log/entry.h"
#include "lsmerkle/page.h"
#include "lsmerkle/read_proof.h"
#include "lsmerkle/scan_proof.h"
#include "lsmerkle/root_certificate.h"

namespace wedge {

namespace wire_internal {
template <typename T>
Bytes EncodeMsg(const T& msg) {
  Encoder enc;
  msg.EncodeTo(&enc);
  return enc.TakeBuffer();
}
template <typename T>
Result<T> DecodeMsg(Slice wire) {
  Decoder dec(wire);
  auto msg = T::DecodeFrom(&dec);
  if (!msg.ok()) return msg.status();
  WEDGE_RETURN_NOT_OK(dec.ExpectDone());
  return msg;
}
}  // namespace wire_internal

#define WEDGE_MSG_HELPERS(T)                                   \
  Bytes Encode() const { return wire_internal::EncodeMsg(*this); } \
  static Result<T> Decode(Slice wire) {                        \
    return wire_internal::DecodeMsg<T>(wire);                  \
  }

// ---------------------------------------------------------------- logging

/// Client -> edge: a batch of signed entries to append (add or put; the
/// MsgType distinguishes them). `req_id` correlates the response.
struct AddRequest {
  SeqNum req_id = 0;
  std::vector<Entry> entries;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU32(static_cast<uint32_t>(entries.size()));
    for (const auto& e : entries) e.EncodeTo(enc);
  }
  static Result<AddRequest> DecodeFrom(Decoder* dec) {
    AddRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    uint32_t n = 0;
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    for (uint32_t i = 0; i < n; ++i) {
      auto e = Entry::DecodeFrom(dec);
      if (!e.ok()) return e.status();
      m.entries.push_back(std::move(*e));
    }
    return m;
  }
  WEDGE_MSG_HELPERS(AddRequest)
};

/// Edge -> client: the block that contains the client's entries. This
/// signed response is the client's Phase I evidence (temporary proof).
struct AddResponse {
  SeqNum req_id = 0;
  BlockId bid = 0;
  Block block;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(bid);
    block.EncodeTo(enc);
  }
  static Result<AddResponse> DecodeFrom(Decoder* dec) {
    AddResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.block, Block::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(AddResponse)
};

/// Client -> edge: read block `bid`.
struct ReadRequest {
  SeqNum req_id = 0;
  BlockId bid = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(bid);
  }
  static Result<ReadRequest> DecodeFrom(Decoder* dec) {
    ReadRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    return m;
  }
  WEDGE_MSG_HELPERS(ReadRequest)
};

/// Edge -> client: the block, with the cloud's proof when available
/// (Phase II read) or without it (Phase I read). `available == false` is
/// the signed "block not available" answer — evidence in omission
/// disputes.
struct ReadResponse {
  SeqNum req_id = 0;
  BlockId bid = 0;
  bool available = false;
  Block block;                            // valid iff available
  std::optional<BlockCertificate> proof;  // Phase II iff present

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(bid);
    enc->PutBool(available);
    if (available) block.EncodeTo(enc);
    enc->PutBool(proof.has_value());
    if (proof.has_value()) proof->EncodeTo(enc);
  }
  static Result<ReadResponse> DecodeFrom(Decoder* dec) {
    ReadResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.available, dec->GetBool());
    if (m.available) {
      WEDGE_ASSIGN_OR_RETURN(m.block, Block::DecodeFrom(dec));
    }
    bool has_proof = false;
    WEDGE_ASSIGN_OR_RETURN(has_proof, dec->GetBool());
    if (has_proof) {
      auto c = BlockCertificate::DecodeFrom(dec);
      if (!c.ok()) return c.status();
      m.proof = std::move(*c);
    }
    return m;
  }
  WEDGE_MSG_HELPERS(ReadResponse)
};

/// Edge -> cloud: certify block `bid` with this digest. Data-free: the
/// block itself never travels. (`full_block` exists only for the
/// ablation benchmark that measures what data-free certification saves;
/// the cloud ignores the block beyond a digest cross-check.)
struct BlockCertify {
  BlockId bid = 0;
  Digest256 digest;
  /// Whether the block carries key-value puts (L0 material). The cloud
  /// records this so backups can rebuild L0 correctly after an edge
  /// restart.
  bool is_kv = false;
  std::optional<Block> full_block;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(bid);
    digest.EncodeTo(enc);
    enc->PutBool(is_kv);
    enc->PutBool(full_block.has_value());
    if (full_block.has_value()) full_block->EncodeTo(enc);
  }
  static Result<BlockCertify> DecodeFrom(Decoder* dec) {
    BlockCertify m;
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.digest, Digest256::DecodeFrom(dec));
    WEDGE_ASSIGN_OR_RETURN(m.is_kv, dec->GetBool());
    bool has_block = false;
    WEDGE_ASSIGN_OR_RETURN(has_block, dec->GetBool());
    if (has_block) {
      auto b = Block::DecodeFrom(dec);
      if (!b.ok()) return b.status();
      m.full_block = std::move(*b);
    }
    return m;
  }
  WEDGE_MSG_HELPERS(BlockCertify)
};

/// Cloud -> edge (forwarded to clients): the block-proof.
struct BlockProof {
  BlockCertificate cert;

  void EncodeTo(Encoder* enc) const { cert.EncodeTo(enc); }
  static Result<BlockProof> DecodeFrom(Decoder* dec) {
    BlockProof m;
    WEDGE_ASSIGN_OR_RETURN(m.cert, BlockCertificate::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(BlockProof)
};

/// Cloud -> edge: certification refused (a different digest was already
/// certified for this bid). The edge is now flagged as malicious.
struct CertifyReject {
  BlockId bid = 0;
  Digest256 offered;
  Digest256 certified;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(bid);
    offered.EncodeTo(enc);
    certified.EncodeTo(enc);
  }
  static Result<CertifyReject> DecodeFrom(Decoder* dec) {
    CertifyReject m;
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.offered, Digest256::DecodeFrom(dec));
    WEDGE_ASSIGN_OR_RETURN(m.certified, Digest256::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(CertifyReject)
};

// -------------------------------------------------------------- key-value

/// Client -> edge: get `key` with proof.
struct GetRequest {
  SeqNum req_id = 0;
  Key key = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(key);
  }
  static Result<GetRequest> DecodeFrom(Decoder* dec) {
    GetRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.key, dec->GetU64());
    return m;
  }
  WEDGE_MSG_HELPERS(GetRequest)
};

/// Edge -> client: the proof-carrying get response (lsmerkle/read_proof.h).
struct GetResponse {
  SeqNum req_id = 0;
  GetResponseBody body;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    body.EncodeTo(enc);
  }
  static Result<GetResponse> DecodeFrom(Decoder* dec) {
    GetResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.body, GetResponseBody::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(GetResponse)
};

/// Edge -> cloud: merge level `from_level` into the next level. Ships the
/// inputs: the L0 blocks (from_level == 0) or the level's pages, plus the
/// target level's pages.
struct MergeRequest {
  uint32_t from_level = 0;
  /// Total Merkle levels (1..num_levels) in the edge's LSMerkle; the
  /// cloud mirrors this in its root bookkeeping.
  uint32_t num_levels = 0;
  Epoch cur_epoch = 0;
  std::vector<Block> l0_blocks;  // from_level == 0 only
  std::vector<Page> from_pages;  // from_level > 0 only
  std::vector<Page> to_pages;

  void EncodeTo(Encoder* enc) const {
    enc->PutU32(from_level);
    enc->PutU32(num_levels);
    enc->PutU64(cur_epoch);
    enc->PutU32(static_cast<uint32_t>(l0_blocks.size()));
    for (const auto& b : l0_blocks) b.EncodeTo(enc);
    enc->PutU32(static_cast<uint32_t>(from_pages.size()));
    for (const auto& p : from_pages) p.EncodeTo(enc);
    enc->PutU32(static_cast<uint32_t>(to_pages.size()));
    for (const auto& p : to_pages) p.EncodeTo(enc);
  }
  static Result<MergeRequest> DecodeFrom(Decoder* dec) {
    MergeRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.from_level, dec->GetU32());
    WEDGE_ASSIGN_OR_RETURN(m.num_levels, dec->GetU32());
    WEDGE_ASSIGN_OR_RETURN(m.cur_epoch, dec->GetU64());
    uint32_t n = 0;
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    for (uint32_t i = 0; i < n; ++i) {
      auto b = Block::DecodeFrom(dec);
      if (!b.ok()) return b.status();
      m.l0_blocks.push_back(std::move(*b));
    }
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    for (uint32_t i = 0; i < n; ++i) {
      auto p = Page::DecodeFrom(dec);
      if (!p.ok()) return p.status();
      m.from_pages.push_back(std::move(*p));
    }
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    for (uint32_t i = 0; i < n; ++i) {
      auto p = Page::DecodeFrom(dec);
      if (!p.ok()) return p.status();
      m.to_pages.push_back(std::move(*p));
    }
    return m;
  }
  WEDGE_MSG_HELPERS(MergeRequest)

  size_t ByteSize() const {
    size_t sz = 4 + 8 + 12;
    for (const auto& b : l0_blocks) sz += b.ByteSize();
    for (const auto& p : from_pages) sz += p.ByteSize();
    for (const auto& p : to_pages) sz += p.ByteSize();
    return sz;
  }
};

/// Cloud -> edge: the merged pages plus the new signed root.
struct MergeResponse {
  uint32_t from_level = 0;
  uint32_t consumed_l0 = 0;
  std::vector<Page> merged;
  RootCertificate root_cert;

  void EncodeTo(Encoder* enc) const {
    enc->PutU32(from_level);
    enc->PutU32(consumed_l0);
    enc->PutU32(static_cast<uint32_t>(merged.size()));
    for (const auto& p : merged) p.EncodeTo(enc);
    root_cert.EncodeTo(enc);
  }
  static Result<MergeResponse> DecodeFrom(Decoder* dec) {
    MergeResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.from_level, dec->GetU32());
    WEDGE_ASSIGN_OR_RETURN(m.consumed_l0, dec->GetU32());
    uint32_t n = 0;
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    for (uint32_t i = 0; i < n; ++i) {
      auto p = Page::DecodeFrom(dec);
      if (!p.ok()) return p.status();
      m.merged.push_back(std::move(*p));
    }
    WEDGE_ASSIGN_OR_RETURN(m.root_cert, RootCertificate::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(MergeResponse)

  size_t ByteSize() const {
    size_t sz = 12 + 96;
    for (const auto& p : merged) sz += p.ByteSize();
    return sz;
  }
};

// ------------------------------------------------- maintenance & security

/// Cloud -> clients: signed (edge, log size, time). A client learning
/// log_size = N knows every bid < N exists — the omission-attack
/// mitigation (§IV-E).
struct Gossip {
  NodeId edge = kInvalidNodeId;
  uint64_t log_size = 0;
  SimTime cloud_time = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU32(edge);
    enc->PutU64(log_size);
    enc->PutI64(cloud_time);
  }
  static Result<Gossip> DecodeFrom(Decoder* dec) {
    Gossip m;
    WEDGE_ASSIGN_OR_RETURN(m.edge, dec->GetU32());
    WEDGE_ASSIGN_OR_RETURN(m.log_size, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.cloud_time, dec->GetI64());
    return m;
  }
  WEDGE_MSG_HELPERS(Gossip)
};

enum class DisputeKind : uint8_t {
  /// The edge's signed add-response names a block whose certified digest
  /// differs (entry never made it into the certified block).
  kAddMismatch = 0,
  /// The edge's signed read-response carried a block whose digest differs
  /// from the certified one.
  kReadMismatch = 1,
  /// The edge signed "block not available" for a bid the cloud certified.
  kOmission = 2,
  /// The edge's signed scan response fails completeness verification
  /// (truncated/withheld pages, tampered claims). The evidence is
  /// self-contained: the cloud re-runs the scan verifier on it.
  kScanTruncation = 3,
};

/// Client -> cloud: evidence is the raw signed envelope received from the
/// edge (AddResponse, ReadResponse, or the negative ReadResponse).
struct Dispute {
  DisputeKind kind = DisputeKind::kAddMismatch;
  NodeId edge = kInvalidNodeId;
  BlockId bid = 0;
  Bytes evidence;  // raw envelope bytes

  void EncodeTo(Encoder* enc) const {
    enc->PutU8(static_cast<uint8_t>(kind));
    enc->PutU32(edge);
    enc->PutU64(bid);
    enc->PutBytes(evidence);
  }
  static Result<Dispute> DecodeFrom(Decoder* dec) {
    Dispute m;
    uint8_t k = 0;
    WEDGE_ASSIGN_OR_RETURN(k, dec->GetU8());
    if (k > static_cast<uint8_t>(DisputeKind::kScanTruncation)) {
      return Status::Corruption("bad dispute kind");
    }
    m.kind = static_cast<DisputeKind>(k);
    WEDGE_ASSIGN_OR_RETURN(m.edge, dec->GetU32());
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.evidence, dec->GetBytes());
    return m;
  }
  WEDGE_MSG_HELPERS(Dispute)
};

/// Cloud -> client: adjudication result.
struct DisputeVerdict {
  NodeId edge = kInvalidNodeId;
  BlockId bid = 0;
  bool edge_guilty = false;
  /// The certified digest for the disputed block, if any (lets the client
  /// fetch the true block from a recovered replica).
  bool has_certified_digest = false;
  Digest256 certified_digest;

  void EncodeTo(Encoder* enc) const {
    enc->PutU32(edge);
    enc->PutU64(bid);
    enc->PutBool(edge_guilty);
    enc->PutBool(has_certified_digest);
    certified_digest.EncodeTo(enc);
  }
  static Result<DisputeVerdict> DecodeFrom(Decoder* dec) {
    DisputeVerdict m;
    WEDGE_ASSIGN_OR_RETURN(m.edge, dec->GetU32());
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.edge_guilty, dec->GetBool());
    WEDGE_ASSIGN_OR_RETURN(m.has_certified_digest, dec->GetBool());
    WEDGE_ASSIGN_OR_RETURN(m.certified_digest, Digest256::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(DisputeVerdict)
};

/// Client -> edge: reserve the next log position (§IV-E replay hardening).
struct ReserveRequest {
  SeqNum req_id = 0;

  void EncodeTo(Encoder* enc) const { enc->PutU64(req_id); }
  static Result<ReserveRequest> DecodeFrom(Decoder* dec) {
    ReserveRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    return m;
  }
  WEDGE_MSG_HELPERS(ReserveRequest)
};

/// Edge -> client: the reserved (block id, slot) position. The client then
/// signs its entry for exactly this position; an entry surfacing anywhere
/// else is invalid.
struct ReserveResponse {
  SeqNum req_id = 0;
  BlockId bid = 0;
  uint32_t slot = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(bid);
    enc->PutU32(slot);
  }
  static Result<ReserveResponse> DecodeFrom(Decoder* dec) {
    ReserveResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.slot, dec->GetU32());
    return m;
  }
  WEDGE_MSG_HELPERS(ReserveResponse)
};

// ---------------------------------------------------------------- baselines

/// Cloud-only / edge-baseline write: a batch of entries. For edge-baseline
/// the edge forwards the formed block to the cloud inside kEbCertify.
/// `is_kv` is advisory only: kv-ness is content-defined everywhere (an
/// entry is a put iff its payload decodes as one).
struct CloudWriteRequest {
  SeqNum req_id = 0;
  bool is_kv = false;
  std::vector<Entry> entries;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutBool(is_kv);
    enc->PutU32(static_cast<uint32_t>(entries.size()));
    for (const auto& e : entries) e.EncodeTo(enc);
  }
  static Result<CloudWriteRequest> DecodeFrom(Decoder* dec) {
    CloudWriteRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.is_kv, dec->GetBool());
    uint32_t n = 0;
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    for (uint32_t i = 0; i < n; ++i) {
      auto e = Entry::DecodeFrom(dec);
      if (!e.ok()) return e.status();
      m.entries.push_back(std::move(*e));
    }
    return m;
  }
  WEDGE_MSG_HELPERS(CloudWriteRequest)
};

struct CloudWriteResponse {
  SeqNum req_id = 0;
  BlockId bid = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(bid);
  }
  static Result<CloudWriteResponse> DecodeFrom(Decoder* dec) {
    CloudWriteResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.bid, dec->GetU64());
    return m;
  }
  WEDGE_MSG_HELPERS(CloudWriteResponse)
};

struct CloudReadRequest {
  SeqNum req_id = 0;
  Key key = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(key);
  }
  static Result<CloudReadRequest> DecodeFrom(Decoder* dec) {
    CloudReadRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.key, dec->GetU64());
    return m;
  }
  WEDGE_MSG_HELPERS(CloudReadRequest)
};

/// Trusted read served by the cloud itself: no proof needed.
struct CloudReadResponse {
  SeqNum req_id = 0;
  bool found = false;
  Bytes value;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutBool(found);
    enc->PutBytes(value);
  }
  static Result<CloudReadResponse> DecodeFrom(Decoder* dec) {
    CloudReadResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.found, dec->GetBool());
    WEDGE_ASSIGN_OR_RETURN(m.value, dec->GetBytes());
    return m;
  }
  WEDGE_MSG_HELPERS(CloudReadResponse)
};

/// Cloud-only scan: the trusted server's answer to a kScanRequest —
/// newest value per key in [lo, hi], ascending, no proofs (the client
/// fully trusts the cloud).
struct CloudScanResponse {
  SeqNum req_id = 0;
  std::vector<KvPair> pairs;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU32(static_cast<uint32_t>(pairs.size()));
    for (const auto& p : pairs) p.EncodeTo(enc);
  }
  static Result<CloudScanResponse> DecodeFrom(Decoder* dec) {
    CloudScanResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    uint32_t n = 0;
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    m.pairs.reserve(std::min<size_t>(n, dec->remaining()));
    for (uint32_t i = 0; i < n; ++i) {
      auto p = KvPair::DecodeFrom(dec);
      if (!p.ok()) return p.status();
      m.pairs.push_back(std::move(*p));
    }
    return m;
  }
  WEDGE_MSG_HELPERS(CloudScanResponse)
};

/// Edge-baseline edge -> cloud: the full block (not just a digest — this
/// is precisely what data-free certification avoids). Kv-ness is
/// content-defined (an entry is a put iff its payload decodes as one),
/// so raw log appends travel the same message and simply contribute no
/// pairs to the cloud's authoritative mLSM.
struct EbCertify {
  Block block;

  void EncodeTo(Encoder* enc) const { block.EncodeTo(enc); }
  static Result<EbCertify> DecodeFrom(Decoder* dec) {
    EbCertify m;
    WEDGE_ASSIGN_OR_RETURN(m.block, Block::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(EbCertify)
};

/// Edge-baseline cloud -> edge: block certificate, plus the merged pages
/// and fresh root when this write triggered a compaction at the cloud.
struct EbCertifyResponse {
  BlockCertificate block_cert;
  /// Merges applied at the cloud as a result of this write, innermost
  /// first. Each entry mirrors a MergeResponse.
  struct AppliedMerge {
    uint32_t from_level = 0;
    uint32_t consumed_l0 = 0;
    std::vector<Page> merged;
  };
  std::vector<AppliedMerge> merges;
  RootCertificate root_cert;

  void EncodeTo(Encoder* enc) const {
    block_cert.EncodeTo(enc);
    enc->PutU32(static_cast<uint32_t>(merges.size()));
    for (const auto& m : merges) {
      enc->PutU32(m.from_level);
      enc->PutU32(m.consumed_l0);
      enc->PutU32(static_cast<uint32_t>(m.merged.size()));
      for (const auto& p : m.merged) p.EncodeTo(enc);
    }
    root_cert.EncodeTo(enc);
  }
  static Result<EbCertifyResponse> DecodeFrom(Decoder* dec) {
    EbCertifyResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.block_cert, BlockCertificate::DecodeFrom(dec));
    uint32_t nm = 0;
    WEDGE_ASSIGN_OR_RETURN(nm, dec->GetU32());
    for (uint32_t i = 0; i < nm; ++i) {
      AppliedMerge am;
      WEDGE_ASSIGN_OR_RETURN(am.from_level, dec->GetU32());
      WEDGE_ASSIGN_OR_RETURN(am.consumed_l0, dec->GetU32());
      uint32_t np = 0;
      WEDGE_ASSIGN_OR_RETURN(np, dec->GetU32());
      for (uint32_t j = 0; j < np; ++j) {
        auto p = Page::DecodeFrom(dec);
        if (!p.ok()) return p.status();
        am.merged.push_back(std::move(*p));
      }
      m.merges.push_back(std::move(am));
    }
    WEDGE_ASSIGN_OR_RETURN(m.root_cert, RootCertificate::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(EbCertifyResponse)

  size_t ByteSize() const {
    size_t sz = 96 + 4 + 96;
    for (const auto& m : merges) {
      sz += 12;
      for (const auto& p : m.merged) sz += p.ByteSize();
    }
    return sz;
  }
};

// ------------------------------------------- cloud backup & read repair

/// Edge -> cloud: request backed-up blocks starting at `from_bid`. Used
/// by a recovering edge to re-fetch blocks lost to a crash, and by the
/// read path to repair a retention-evicted block on demand.
struct BackupFetch {
  BlockId from_bid = 0;
  /// Upper bound on blocks returned (0 = no limit).
  uint32_t max_blocks = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(from_bid);
    enc->PutU32(max_blocks);
  }
  static Result<BackupFetch> DecodeFrom(Decoder* dec) {
    BackupFetch m;
    WEDGE_ASSIGN_OR_RETURN(m.from_bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.max_blocks, dec->GetU32());
    return m;
  }
  WEDGE_MSG_HELPERS(BackupFetch)
};

/// One backed-up block plus a fresh cloud certificate over its digest,
/// so the receiving edge (and any client it serves) can verify the body
/// against the certified digest without further round trips.
struct BackupItem {
  Block block;
  bool is_kv = false;
  BlockCertificate cert;

  void EncodeTo(Encoder* enc) const {
    block.EncodeTo(enc);
    enc->PutBool(is_kv);
    cert.EncodeTo(enc);
  }
  static Result<BackupItem> DecodeFrom(Decoder* dec) {
    BackupItem m;
    auto b = Block::DecodeFrom(dec);
    if (!b.ok()) return b.status();
    m.block = std::move(*b);
    WEDGE_ASSIGN_OR_RETURN(m.is_kv, dec->GetBool());
    WEDGE_ASSIGN_OR_RETURN(m.cert, BlockCertificate::DecodeFrom(dec));
    return m;
  }
};

/// Cloud -> edge: the backed-up blocks it holds in [from_bid, ...),
/// ascending by block id (gaps possible: the cloud only backs up blocks
/// it saw in full — via merges or full-block certifies).
struct BackupBlocks {
  BlockId from_bid = 0;
  /// True when the response reaches the end of the cloud's backup (it
  /// was not cut short by the fetch's max_blocks): the receiver may then
  /// treat any absent bid >= from_bid as not backed up at all.
  bool complete = true;
  std::vector<BackupItem> items;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(from_bid);
    enc->PutBool(complete);
    enc->PutU32(static_cast<uint32_t>(items.size()));
    for (const auto& it : items) it.EncodeTo(enc);
  }
  static Result<BackupBlocks> DecodeFrom(Decoder* dec) {
    BackupBlocks m;
    WEDGE_ASSIGN_OR_RETURN(m.from_bid, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.complete, dec->GetBool());
    uint32_t n = 0;
    WEDGE_ASSIGN_OR_RETURN(n, dec->GetU32());
    m.items.reserve(std::min<size_t>(n, dec->remaining()));
    for (uint32_t i = 0; i < n; ++i) {
      auto it = BackupItem::DecodeFrom(dec);
      if (!it.ok()) return it.status();
      m.items.push_back(std::move(*it));
    }
    return m;
  }
  WEDGE_MSG_HELPERS(BackupBlocks)

  size_t ByteSize() const {
    size_t sz = 12;
    for (const auto& it : items) sz += it.block.ByteSize() + 1 + 96;
    return sz;
  }
};

/// Client -> cloud: serve a get for `key` from the cloud's backup of
/// `edge`'s blocks. Failure-aware routing sends this when the home edge
/// is crashed or partitioned away: slower (WAN round trip) but still
/// verified, since the response carries a certificate over the block.
struct CloudGetRequest {
  SeqNum req_id = 0;
  NodeId edge = kInvalidNodeId;
  Key key = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU32(edge);
    enc->PutU64(key);
  }
  static Result<CloudGetRequest> DecodeFrom(Decoder* dec) {
    CloudGetRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.edge, dec->GetU32());
    WEDGE_ASSIGN_OR_RETURN(m.key, dec->GetU64());
    return m;
  }
  WEDGE_MSG_HELPERS(CloudGetRequest)
};

/// Cloud -> client: the newest backed-up kv block containing the key,
/// plus a fresh certificate pinning its digest — the client verifies the
/// body and extracts the newest put itself (the cloud's answer is never
/// trusted bare). found=false is NOT a proof of absence: the backup may
/// lag the edge, and carries no Merkle structure to prove a miss.
struct CloudGetResponse {
  SeqNum req_id = 0;
  bool found = false;
  Block block;
  BlockCertificate cert;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutBool(found);
    block.EncodeTo(enc);
    cert.EncodeTo(enc);
  }
  static Result<CloudGetResponse> DecodeFrom(Decoder* dec) {
    CloudGetResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.found, dec->GetBool());
    auto b = Block::DecodeFrom(dec);
    if (!b.ok()) return b.status();
    m.block = std::move(*b);
    WEDGE_ASSIGN_OR_RETURN(m.cert, BlockCertificate::DecodeFrom(dec));
    return m;
  }
  WEDGE_MSG_HELPERS(CloudGetResponse)
};

// ------------------------------------------------ verifiable range scan

/// Client -> edge: scan [lo, hi].
struct ScanRequest {
  SeqNum req_id = 0;
  Key lo = 0;
  Key hi = 0;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    enc->PutU64(lo);
    enc->PutU64(hi);
  }
  static Result<ScanRequest> DecodeFrom(Decoder* dec) {
    ScanRequest m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.lo, dec->GetU64());
    WEDGE_ASSIGN_OR_RETURN(m.hi, dec->GetU64());
    return m;
  }
  WEDGE_MSG_HELPERS(ScanRequest)
};

/// Edge -> client: the proof-carrying scan result (scan_proof.h).
struct ScanResponse {
  SeqNum req_id = 0;
  ScanResponseBody body;

  void EncodeTo(Encoder* enc) const {
    enc->PutU64(req_id);
    body.EncodeTo(enc);
  }
  static Result<ScanResponse> DecodeFrom(Decoder* dec) {
    ScanResponse m;
    WEDGE_ASSIGN_OR_RETURN(m.req_id, dec->GetU64());
    auto b = ScanResponseBody::DecodeFrom(dec);
    if (!b.ok()) return b.status();
    m.body = std::move(*b);
    return m;
  }
  WEDGE_MSG_HELPERS(ScanResponse)

  size_t ByteSize() const { return 8 + body.ByteSize(); }
};

#undef WEDGE_MSG_HELPERS

}  // namespace wedge
