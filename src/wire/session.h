// Per-connection session sealing for envelopes (the v2 wire format).
//
// v1 envelopes HMAC every message under the sender's identity key —
// correct, but the two key-block compressions plus a full digest per
// message show up on the warm read path. A session channel derives the
// directed per-(sender, receiver) key once (KeyStore::SessionKeyFor /
// Signer::SessionKeyTo), keeps its ipad/opad midstates, and stamps each
// message with a monotonic counter:
//
//   - authenticity: the MAC key is derivable only by the sender and the
//     trusted directory, so a tag still binds the sender (§IV-A) and
//     session-sealed evidence still convicts in a dispute
//     (Envelope::OpenHistorical re-derives the key statelessly);
//   - replay exclusion: SessionOpener accepts a message only if its
//     counter is strictly greater than the last accepted one from that
//     peer. Forward gaps are allowed — the fault plane legitimately
//     drops messages — but replays and rollbacks are SecurityViolation;
//   - crash durability: counters are part of a node's durable identity,
//     not its volatile protocol state. A recovering node keeps sealing
//     above its old counters, so its peers' openers accept it without a
//     reset handshake.
//
// Sealer and opener are per-node objects (one lane each under the
// threaded runtime); the shared KeyStore stays const.

#pragma once

#include <unordered_map>

#include "crypto/hmac.h"
#include "wire/message.h"

namespace wedge {

/// Outbound half: seals messages this node sends, one channel (key +
/// counter) per receiver.
class SessionSealer {
 public:
  SessionSealer() = default;
  explicit SessionSealer(Signer signer) : signer_(std::move(signer)) {}

  NodeId id() const { return signer_.id(); }
  const Signer& signer() const { return signer_; }

  /// Seals `body` for `receiver` in the v2 format, consuming the next
  /// counter value on that channel.
  Bytes Seal(NodeId receiver, MsgType type, const Bytes& body);

 private:
  struct Channel {
    HmacKey key;
    uint64_t next_counter = 1;
  };

  Signer signer_;
  std::unordered_map<NodeId, Channel> channels_;
};

/// Inbound half: opens envelopes addressed to `self`, tracking the
/// highest accepted counter per peer. Accepts v1 envelopes unchanged
/// (old format stays decodable).
class SessionOpener {
 public:
  SessionOpener() = default;
  SessionOpener(const KeyStore* keystore, NodeId self)
      : keystore_(keystore), self_(self) {}

  /// Errors:
  ///  - Corruption: malformed bytes
  ///  - SecurityViolation: bad MAC, wrong receiver, or counter replay
  ///  - FailedPrecondition: revoked sender
  Result<Envelope> Open(Slice wire);

 private:
  struct Peer {
    HmacKey key;
    uint64_t last_counter = 0;
  };

  const KeyStore* keystore_ = nullptr;
  NodeId self_ = kInvalidNodeId;
  std::unordered_map<NodeId, Peer> peers_;
};

}  // namespace wedge
