#include "storage/block_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace wedge {

namespace {

constexpr char kSegmentPrefix[] = "blocks-";
constexpr char kSegmentSuffix[] = ".log";

std::string SegmentName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%08" PRIu64 "%s", kSegmentPrefix, seq,
                kSegmentSuffix);
  return buf;
}

/// Parses "blocks-<seq>.log"; returns 0 for non-segment names.
uint64_t ParseSegmentName(const std::string& name) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return 0;
  if (name.compare(0, prefix_len, kSegmentPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix_len, suffix_len, kSegmentSuffix) !=
      0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

BlockStore::BlockStore(Env* env, std::string dir, BlockStoreOptions options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<BlockStore>> BlockStore::Open(
    Env* env, std::string dir, BlockStoreOptions options) {
  WEDGE_RETURN_NOT_OK(env->CreateDirs(dir));
  std::unique_ptr<BlockStore> store(
      new BlockStore(env, std::move(dir), options));

  // Continue numbering after the highest existing segment.
  std::vector<std::string> names;
  WEDGE_ASSIGN_OR_RETURN(names, env->ListDir(store->dir_));
  uint64_t max_seq = 0;
  for (const std::string& name : names) {
    max_seq = std::max(max_seq, ParseSegmentName(name));
  }
  store->next_segment_seq_ = max_seq + 1;
  WEDGE_RETURN_NOT_OK(store->OpenNewSegment());
  return store;
}

Status BlockStore::OpenNewSegment() {
  const std::string path = dir_ + "/" + SegmentName(next_segment_seq_);
  ++next_segment_seq_;
  WEDGE_ASSIGN_OR_RETURN(segment_file_, env_->NewWritableFile(path));
  writer_ = std::make_unique<RecordLogWriter>(segment_file_.get());
  return Status::OK();
}

Status BlockStore::AppendRecord(Slice payload, bool sync) {
  if (options_.segment_size > 0 &&
      writer_->physical_size() >= options_.segment_size) {
    WEDGE_RETURN_NOT_OK(segment_file_->Sync());
    WEDGE_RETURN_NOT_OK(segment_file_->Close());
    WEDGE_RETURN_NOT_OK(OpenNewSegment());
  }
  WEDGE_RETURN_NOT_OK(writer_->AddRecord(payload));
  return sync ? writer_->Sync() : writer_->Flush();
}

Status BlockStore::AppendBlock(const Block& block, bool is_kv) {
  Encoder enc;
  enc.PutU8(kBlockRecord);
  enc.PutBool(is_kv);
  block.EncodeTo(&enc);
  return AppendRecord(enc.buffer(), options_.sync_every_block);
}

Status BlockStore::AppendCertificate(const BlockCertificate& cert) {
  Encoder enc;
  enc.PutU8(kCertRecord);
  cert.EncodeTo(&enc);
  return AppendRecord(enc.buffer(), /*sync=*/false);
}

Status BlockStore::Sync() { return writer_->Sync(); }

Result<size_t> BlockStore::SegmentCount() const {
  std::vector<std::string> names;
  WEDGE_ASSIGN_OR_RETURN(names, env_->ListDir(dir_));
  size_t count = 0;
  for (const std::string& name : names) {
    if (ParseSegmentName(name) != 0) ++count;
  }
  return count;
}

Result<BlockStore::Recovered> BlockStore::Recover(Env* env,
                                                  const std::string& dir) {
  std::vector<std::string> names;
  WEDGE_ASSIGN_OR_RETURN(names, env->ListDir(dir));

  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    const uint64_t seq = ParseSegmentName(name);
    if (seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());

  Recovered out;
  // Certificates may precede their block in no valid writer ordering, but
  // tolerate any interleaving across segment boundaries by buffering
  // certificates that arrive before their block.
  std::vector<BlockCertificate> pending_certs;

  for (const uint64_t seq : seqs) {
    const std::string path = dir + "/" + SegmentName(seq);
    std::unique_ptr<RandomAccessFile> file;
    WEDGE_ASSIGN_OR_RETURN(file, env->NewRandomAccessFile(path));
    RecordLogReader reader(file.get());

    Bytes record;
    while (true) {
      auto more = reader.ReadRecord(&record);
      if (!more.ok()) return more.status();
      if (!*more) break;

      Decoder dec{Slice(record)};
      uint8_t tag = 0;
      WEDGE_ASSIGN_OR_RETURN(tag, dec.GetU8());
      switch (tag) {
        case kBlockRecord: {
          bool is_kv = false;
          WEDGE_ASSIGN_OR_RETURN(is_kv, dec.GetBool());
          auto block = Block::DecodeFrom(&dec);
          if (!block.ok()) return block.status();
          WEDGE_RETURN_NOT_OK(dec.ExpectDone());
          const BlockId bid = block->id;
          if (bid != out.log.size()) {
            // Prefix semantics: a lost block makes later blocks
            // unreachable (same as a WAL ending at the gap).
            ++out.blocks_beyond_gap;
            break;
          }
          WEDGE_RETURN_NOT_OK(out.log.Append(std::move(*block)));
          if (out.kv_flags.size() <= bid) out.kv_flags.resize(bid + 1, false);
          out.kv_flags[bid] = is_kv;
          break;
        }
        case kCertRecord: {
          auto cert = BlockCertificate::DecodeFrom(&dec);
          if (!cert.ok()) return cert.status();
          WEDGE_RETURN_NOT_OK(dec.ExpectDone());
          if (out.log.HasBlock(cert->bid)) {
            WEDGE_RETURN_NOT_OK(out.log.SetCertificate(std::move(*cert)));
          } else {
            pending_certs.push_back(std::move(*cert));
          }
          break;
        }
        default:
          return Status::Corruption("unknown block-store record tag " +
                                    std::to_string(tag));
      }
    }
    out.corruption_events += reader.corruption_events();
    out.dropped_bytes += reader.dropped_bytes();
  }

  for (BlockCertificate& cert : pending_certs) {
    if (out.log.HasBlock(cert.bid)) {
      WEDGE_RETURN_NOT_OK(out.log.SetCertificate(std::move(cert)));
    }
    // A certificate for a block we never recovered is harmless: the
    // block itself was lost to a torn tail, and the cloud re-sends
    // certificates on dispute.
  }
  return out;
}

}  // namespace wedge
