#include "storage/record_log.h"

#include <cstring>

#include "storage/crc32c.h"

namespace wedge {

using F = RecordLogFormat;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

RecordLogWriter::RecordLogWriter(WritableFile* dest, uint64_t initial_size)
    : dest_(dest),
      block_offset_(initial_size % F::kBlockSize),
      physical_size_(initial_size) {}

Status RecordLogWriter::AddRecord(Slice payload) {
  const uint8_t* p = payload.data();
  size_t left = payload.size();
  bool begin = true;

  // Emit fragments until the payload is exhausted. A zero-length record
  // still emits one kFull fragment.
  do {
    const size_t room = F::kBlockSize - block_offset_;
    if (room < F::kHeaderSize) {
      // Pad the block trailer with zeros and start a new block.
      static const uint8_t kZeros[F::kHeaderSize] = {0};
      WEDGE_RETURN_NOT_OK(dest_->Append(Slice(kZeros, room)));
      physical_size_ += room;
      block_offset_ = 0;
      continue;
    }

    const size_t avail = room - F::kHeaderSize;
    const size_t frag_len = left < avail ? left : avail;
    const bool end = (frag_len == left);

    F::RecordType type;
    if (begin && end) {
      type = F::kFull;
    } else if (begin) {
      type = F::kFirst;
    } else if (end) {
      type = F::kLast;
    } else {
      type = F::kMiddle;
    }

    WEDGE_RETURN_NOT_OK(EmitFragment(type, p, frag_len));
    p += frag_len;
    left -= frag_len;
    begin = false;
  } while (left > 0);

  return Status::OK();
}

Status RecordLogWriter::EmitFragment(F::RecordType type, const uint8_t* data,
                                     size_t n) {
  uint8_t header[F::kHeaderSize];
  // CRC over type byte then payload, stored masked.
  const uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = Crc32cExtend(0, Slice(&type_byte, 1));
  crc = MaskCrc32c(Crc32cExtend(crc, Slice(data, n)));
  header[0] = static_cast<uint8_t>(crc);
  header[1] = static_cast<uint8_t>(crc >> 8);
  header[2] = static_cast<uint8_t>(crc >> 16);
  header[3] = static_cast<uint8_t>(crc >> 24);
  header[4] = static_cast<uint8_t>(n);
  header[5] = static_cast<uint8_t>(n >> 8);
  header[6] = static_cast<uint8_t>(type);

  WEDGE_RETURN_NOT_OK(dest_->Append(Slice(header, F::kHeaderSize)));
  WEDGE_RETURN_NOT_OK(dest_->Append(Slice(data, n)));
  block_offset_ += F::kHeaderSize + n;
  physical_size_ += F::kHeaderSize + n;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

RecordLogReader::RecordLogReader(const RandomAccessFile* file,
                                 bool resync_on_corruption)
    : file_(file), resync_(resync_on_corruption) {}

RecordLogReader::FragmentOutcome RecordLogReader::NextFragment(
    Fragment* frag) {
  while (true) {
    // Refill when fewer than a header's worth of bytes remain in the
    // current block (the trailer is writer padding).
    if (buffer_.size() - buffer_pos_ < F::kHeaderSize) {
      if (eof_) {
        // Partial header at file end: torn tail.
        dropped_bytes_ += buffer_.size() - buffer_pos_;
        return FragmentOutcome::kEof;
      }
      auto chunk = file_->Read(file_offset_, F::kBlockSize);
      if (!chunk.ok()) return FragmentOutcome::kEof;
      buffer_ = std::move(*chunk);
      buffer_pos_ = 0;
      file_offset_ += buffer_.size();
      if (buffer_.size() < F::kBlockSize) eof_ = true;
      if (buffer_.empty()) return FragmentOutcome::kEof;
      continue;
    }

    const uint8_t* h = buffer_.data() + buffer_pos_;
    const uint32_t stored_crc = static_cast<uint32_t>(h[0]) |
                                static_cast<uint32_t>(h[1]) << 8 |
                                static_cast<uint32_t>(h[2]) << 16 |
                                static_cast<uint32_t>(h[3]) << 24;
    const size_t length = static_cast<size_t>(h[4]) |
                          static_cast<size_t>(h[5]) << 8;
    const uint8_t type = h[6];

    if (type == F::kZero && length == 0 && stored_crc == 0) {
      // Block padding; skip to the next block.
      buffer_pos_ = buffer_.size();
      continue;
    }

    if (type > F::kMaxRecordType ||
        buffer_pos_ + F::kHeaderSize + length > buffer_.size()) {
      if (eof_ && buffer_pos_ + F::kHeaderSize + length > buffer_.size() &&
          type <= F::kMaxRecordType) {
        // Fragment extends past a short final block: torn tail, clean EOF.
        dropped_bytes_ += buffer_.size() - buffer_pos_;
        return FragmentOutcome::kEof;
      }
      return FragmentOutcome::kBad;
    }

    const uint8_t* payload = h + F::kHeaderSize;
    uint32_t crc = Crc32cExtend(0, Slice(&h[6], 1));
    crc = Crc32cExtend(crc, Slice(payload, length));
    if (MaskCrc32c(crc) != stored_crc) return FragmentOutcome::kBad;

    frag->type = static_cast<F::RecordType>(type);
    frag->payload = Slice(payload, length);
    buffer_pos_ += F::kHeaderSize + length;
    return FragmentOutcome::kOk;
  }
}

Result<bool> RecordLogReader::ReadRecord(Bytes* record) {
  record->clear();
  Bytes assembled;
  bool in_record = false;

  while (true) {
    Fragment frag;
    const FragmentOutcome outcome = NextFragment(&frag);

    if (outcome == FragmentOutcome::kEof) {
      if (in_record) dropped_bytes_ += assembled.size();
      return false;
    }

    if (outcome == FragmentOutcome::kBad) {
      ++corruption_events_;
      if (!resync_) {
        return Status::Corruption("bad record fragment at block ending " +
                                  std::to_string(file_offset_));
      }
      // Resync: discard the rest of this block and any partial record.
      dropped_bytes_ += assembled.size() + (buffer_.size() - buffer_pos_);
      buffer_pos_ = buffer_.size();
      assembled.clear();
      in_record = false;
      continue;
    }

    switch (frag.type) {
      case F::kFull:
        if (in_record) {
          // A kFirst without its kLast, then a kFull: drop the partial.
          dropped_bytes_ += assembled.size();
        }
        record->assign(frag.payload.data(),
                       frag.payload.data() + frag.payload.size());
        return true;
      case F::kFirst:
        if (in_record) dropped_bytes_ += assembled.size();
        assembled.assign(frag.payload.data(),
                         frag.payload.data() + frag.payload.size());
        in_record = true;
        break;
      case F::kMiddle:
      case F::kLast:
        if (!in_record) {
          // Continuation without a start (we resynced into the middle of
          // a fragmented record): drop it.
          ++corruption_events_;
          dropped_bytes_ += frag.payload.size();
          if (!resync_) {
            return Status::Corruption("orphan record continuation");
          }
          break;
        }
        assembled.insert(assembled.end(), frag.payload.data(),
                         frag.payload.data() + frag.payload.size());
        if (frag.type == F::kLast) {
          *record = std::move(assembled);
          return true;
        }
        break;
      case F::kZero:
        break;  // unreachable; padding is consumed in NextFragment
    }
  }
}

}  // namespace wedge
