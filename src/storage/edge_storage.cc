#include "storage/edge_storage.h"

namespace wedge {

Result<std::unique_ptr<EdgeStorage>> EdgeStorage::Open(
    Env* env, std::string dir, size_t lsm_levels,
    EdgeStorageOptions options) {
  if (lsm_levels < 2) {
    return Status::InvalidArgument("LSMerkle needs at least 2 levels");
  }
  std::unique_ptr<EdgeStorage> storage(new EdgeStorage(dir));
  WEDGE_ASSIGN_OR_RETURN(
      storage->blocks_,
      BlockStore::Open(env, dir + "/wal", options.block_store));
  WEDGE_ASSIGN_OR_RETURN(
      storage->manifest_,
      Manifest::Open(env, dir + "/manifest", lsm_levels - 1,
                     options.manifest));
  return storage;
}

Result<EdgeStorage::RecoveredState> EdgeStorage::Recover(
    Env* env, const std::string& dir, const LsmConfig& lsm_config) {
  RecoveredState out;
  out.tree = LsmerkleTree(lsm_config);

  BlockStore::Recovered blocks;
  WEDGE_ASSIGN_OR_RETURN(blocks, BlockStore::Recover(env, dir + "/wal"));
  ManifestState manifest;
  WEDGE_ASSIGN_OR_RETURN(
      manifest, Manifest::Recover(env, dir + "/manifest",
                                  lsm_config.level_thresholds.size() - 1));

  // Levels 1..n straight from the manifest, verified against the root
  // certificate when one was committed.
  WEDGE_RETURN_NOT_OK(out.tree.RestoreLevels(
      std::move(manifest.levels), manifest.epoch, manifest.root_cert));

  // L0 = blocks past the consumed prefix, re-applied in log order. Every
  // block occupies an L0 slot (raw appends as pair-less units; kv-ness
  // is content-defined at apply time), matching the live edge's L0 and
  // keeping the proof-visible block id stream contiguous.
  for (BlockId bid = manifest.l0_blocks_consumed; bid < blocks.log.size();
       ++bid) {
    auto block = blocks.log.GetBlock(bid);
    if (!block.ok()) return block.status();
    WEDGE_RETURN_NOT_OK(out.tree.ApplyBlock(std::move(*block)));
  }
  if (blocks.log.size() < manifest.l0_blocks_consumed) {
    // The log lost consumed blocks (crash under relaxed sync). Their
    // contents live on in the manifest's levels; only the raw log bodies
    // are missing, and the cloud's backup can refill them.
    out.log_behind_manifest = manifest.l0_blocks_consumed - blocks.log.size();
  }
  out.blocks_in_log = blocks.log.size();

  // Replay protection continues where the crashed node left off.
  for (BlockId bid = 0; bid < blocks.log.size(); ++bid) {
    auto block = blocks.log.GetBlock(bid);
    if (!block.ok()) return block.status();
    for (const Entry& e : block->entries) {
      auto it = out.last_seq.find(e.client);
      if (it == out.last_seq.end() || it->second < e.seq) {
        out.last_seq[e.client] = e.seq;
      }
    }
  }

  out.log = std::move(blocks.log);
  out.l0_blocks_consumed = manifest.l0_blocks_consumed;
  out.corruption_events = blocks.corruption_events;
  out.dropped_bytes = blocks.dropped_bytes;
  out.blocks_beyond_gap = blocks.blocks_beyond_gap;
  return out;
}

}  // namespace wedge
