#include "storage/manifest.h"

#include <cinttypes>
#include <cstdio>

namespace wedge {

namespace {

constexpr char kCurrentFile[] = "CURRENT";

std::string ManifestName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06" PRIu64, seq);
  return buf;
}

/// Parses "MANIFEST-<seq>"; returns 0 for other names.
uint64_t ParseManifestName(const std::string& name) {
  constexpr char kPrefix[] = "MANIFEST-";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  if (name.size() <= prefix_len) return 0;
  if (name.compare(0, prefix_len, kPrefix) != 0) return 0;
  uint64_t seq = 0;
  for (size_t i = prefix_len; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

Status EncodePagesTo(const std::vector<Page>& pages, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(pages.size()));
  for (const Page& p : pages) p.EncodeTo(enc);
  return Status::OK();
}

Result<std::vector<Page>> DecodePagesFrom(Decoder* dec) {
  uint32_t count = 0;
  WEDGE_ASSIGN_OR_RETURN(count, dec->GetU32());
  std::vector<Page> pages;
  pages.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto page = Page::DecodeFrom(dec);
    if (!page.ok()) return page.status();
    pages.push_back(std::move(*page));
  }
  return pages;
}

}  // namespace

Manifest::Manifest(Env* env, std::string dir, size_t level_count,
                   ManifestOptions options)
    : env_(env),
      dir_(std::move(dir)),
      level_count_(level_count),
      options_(options) {
  state_.levels.resize(level_count);
}

Result<std::unique_ptr<Manifest>> Manifest::Open(Env* env, std::string dir,
                                                 size_t level_count,
                                                 ManifestOptions options) {
  WEDGE_RETURN_NOT_OK(env->CreateDirs(dir));
  std::unique_ptr<Manifest> m(
      new Manifest(env, std::move(dir), level_count, options));

  // Resume from the recovered state, and number new files after every
  // existing manifest (stale ones included).
  WEDGE_ASSIGN_OR_RETURN(m->state_, Recover(env, m->dir_, level_count));
  std::vector<std::string> names;
  WEDGE_ASSIGN_OR_RETURN(names, env->ListDir(m->dir_));
  for (const std::string& name : names) {
    const uint64_t seq = ParseManifestName(name);
    if (seq >= m->next_file_seq_) m->next_file_seq_ = seq + 1;
  }
  WEDGE_RETURN_NOT_OK(m->WriteSnapshotToNewManifest());
  return m;
}

Status Manifest::WriteSnapshotToNewManifest() {
  const std::string name = ManifestName(next_file_seq_);
  ++next_file_seq_;
  const std::string path = dir_ + "/" + name;

  WEDGE_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(path));
  writer_ = std::make_unique<RecordLogWriter>(file_.get());

  Encoder enc;
  enc.PutU8(kSnapshot);
  EncodeSnapshot(state_, &enc);
  WEDGE_RETURN_NOT_OK(writer_->AddRecord(enc.buffer()));
  WEDGE_RETURN_NOT_OK(writer_->Sync());

  // Only after the snapshot is durable does CURRENT flip; a crash
  // in between leaves the previous manifest active.
  WEDGE_RETURN_NOT_OK(
      env_->WriteFileAtomic(dir_ + "/" + kCurrentFile, Slice(name)));

  // Every other manifest is now garbage: the previously active one and
  // any orphans from crashes between snapshot and CURRENT flip.
  std::vector<std::string> names;
  WEDGE_ASSIGN_OR_RETURN(names, env_->ListDir(dir_));
  for (const std::string& stale : names) {
    if (stale != name && ParseManifestName(stale) != 0) {
      (void)env_->DeleteFile(dir_ + "/" + stale);
    }
  }
  active_name_ = name;
  records_in_active_ = 1;
  return Status::OK();
}

Status Manifest::AppendRecord(Slice payload) {
  WEDGE_RETURN_NOT_OK(writer_->AddRecord(payload));
  ++records_in_active_;
  return Status::OK();
}

Status Manifest::LogMerge(
    const std::vector<std::pair<size_t, std::vector<Page>>>& changed_levels,
    const RootCertificate& cert, uint64_t l0_blocks_consumed) {
  if (l0_blocks_consumed < state_.l0_blocks_consumed) {
    return Status::InvalidArgument("l0_blocks_consumed moved backwards");
  }
  for (const auto& [level, pages] : changed_levels) {
    if (level < 1 || level > level_count_) {
      return Status::InvalidArgument("manifest level " +
                                     std::to_string(level) + " out of range");
    }
    Encoder enc;
    enc.PutU8(kLevelPages);
    enc.PutU32(static_cast<uint32_t>(level));
    WEDGE_RETURN_NOT_OK(EncodePagesTo(pages, &enc));
    WEDGE_RETURN_NOT_OK(AppendRecord(enc.buffer()));
  }

  Encoder enc;
  enc.PutU8(kMergeCommit);
  enc.PutU64(l0_blocks_consumed);
  cert.EncodeTo(&enc);
  WEDGE_RETURN_NOT_OK(AppendRecord(enc.buffer()));
  WEDGE_RETURN_NOT_OK(writer_->Sync());

  // Only mutate in-memory state once everything is durable, so state()
  // never runs ahead of what recovery would see.
  for (const auto& [level, pages] : changed_levels) {
    state_.levels[level - 1] = pages;
  }
  state_.epoch = cert.epoch;
  state_.root_cert = cert;
  state_.l0_blocks_consumed = l0_blocks_consumed;

  if (options_.rotate_after_records > 0 &&
      records_in_active_ >= options_.rotate_after_records) {
    WEDGE_RETURN_NOT_OK(WriteSnapshotToNewManifest());
  }
  return Status::OK();
}

void Manifest::EncodeSnapshot(const ManifestState& state, Encoder* enc) {
  enc->PutU64(state.l0_blocks_consumed);
  enc->PutU64(state.epoch);
  enc->PutBool(state.root_cert.has_value());
  if (state.root_cert.has_value()) state.root_cert->EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(state.levels.size()));
  for (const auto& pages : state.levels) {
    (void)EncodePagesTo(pages, enc);
  }
}

Status Manifest::ApplyRecord(Slice record, size_t level_count,
                             ManifestState* state) {
  Decoder dec(record);
  uint8_t tag = 0;
  WEDGE_ASSIGN_OR_RETURN(tag, dec.GetU8());
  switch (tag) {
    case kLevelPages: {
      uint32_t level = 0;
      WEDGE_ASSIGN_OR_RETURN(level, dec.GetU32());
      if (level < 1 || level > level_count) {
        return Status::Corruption("manifest level out of range");
      }
      auto pages = DecodePagesFrom(&dec);
      if (!pages.ok()) return pages.status();
      WEDGE_RETURN_NOT_OK(dec.ExpectDone());
      state->levels[level - 1] = std::move(*pages);
      return Status::OK();
    }
    case kMergeCommit: {
      uint64_t consumed = 0;
      WEDGE_ASSIGN_OR_RETURN(consumed, dec.GetU64());
      auto cert = RootCertificate::DecodeFrom(&dec);
      if (!cert.ok()) return cert.status();
      WEDGE_RETURN_NOT_OK(dec.ExpectDone());
      state->l0_blocks_consumed = consumed;
      state->epoch = cert->epoch;
      state->root_cert = std::move(*cert);
      return Status::OK();
    }
    case kSnapshot: {
      ManifestState snap;
      WEDGE_ASSIGN_OR_RETURN(snap.l0_blocks_consumed, dec.GetU64());
      WEDGE_ASSIGN_OR_RETURN(snap.epoch, dec.GetU64());
      bool has_cert = false;
      WEDGE_ASSIGN_OR_RETURN(has_cert, dec.GetBool());
      if (has_cert) {
        auto cert = RootCertificate::DecodeFrom(&dec);
        if (!cert.ok()) return cert.status();
        snap.root_cert = std::move(*cert);
      }
      uint32_t levels = 0;
      WEDGE_ASSIGN_OR_RETURN(levels, dec.GetU32());
      if (levels != level_count) {
        return Status::Corruption(
            "manifest level count mismatch: file has " +
            std::to_string(levels) + ", config wants " +
            std::to_string(level_count));
      }
      snap.levels.resize(levels);
      for (uint32_t i = 0; i < levels; ++i) {
        auto pages = DecodePagesFrom(&dec);
        if (!pages.ok()) return pages.status();
        snap.levels[i] = std::move(*pages);
      }
      WEDGE_RETURN_NOT_OK(dec.ExpectDone());
      *state = std::move(snap);
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown manifest record tag " +
                                std::to_string(tag));
  }
}

Result<ManifestState> Manifest::Recover(Env* env, const std::string& dir,
                                        size_t level_count) {
  ManifestState state;
  state.levels.resize(level_count);

  const std::string current_path = dir + "/" + kCurrentFile;
  if (!env->FileExists(current_path)) return state;  // fresh store

  Bytes current;
  WEDGE_ASSIGN_OR_RETURN(current, env->ReadFileToBytes(current_path));
  const std::string active(current.begin(), current.end());
  if (ParseManifestName(active) == 0) {
    return Status::Corruption("CURRENT does not name a manifest: " + active);
  }

  std::unique_ptr<RandomAccessFile> file;
  WEDGE_ASSIGN_OR_RETURN(file, env->NewRandomAccessFile(dir + "/" + active));
  RecordLogReader reader(file.get());

  // Records after a merge's kLevelPages but before its kMergeCommit must
  // not leak into the recovered state if the commit was torn: stage level
  // changes and fold them in only at commit.
  ManifestState staged = state;
  bool committed_anything = false;

  Bytes record;
  while (true) {
    auto more = reader.ReadRecord(&record);
    if (!more.ok()) return more.status();
    if (!*more) break;

    Decoder peek{Slice(record)};
    auto tag = peek.GetU8();
    if (!tag.ok()) return tag.status();

    WEDGE_RETURN_NOT_OK(ApplyRecord(Slice(record), level_count, &staged));
    if (*tag == kMergeCommit || *tag == kSnapshot) {
      state = staged;
      committed_anything = true;
    }
  }
  (void)committed_anything;
  return state;
}

}  // namespace wedge
