#include "storage/env.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#ifdef _WIN32
#error "PosixEnv requires a POSIX platform"
#else
#include <unistd.h>
#endif

namespace wedge {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Env convenience methods
// ---------------------------------------------------------------------------

Result<Bytes> Env::ReadFileToBytes(const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  WEDGE_ASSIGN_OR_RETURN(file, NewRandomAccessFile(path));
  uint64_t size = 0;
  WEDGE_ASSIGN_OR_RETURN(size, file->Size());
  return file->Read(0, static_cast<size_t>(size));
}

Status Env::WriteFileAtomic(const std::string& path, Slice data) {
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  WEDGE_ASSIGN_OR_RETURN(file, NewWritableFile(tmp));
  WEDGE_RETURN_NOT_OK(file->Append(data));
  WEDGE_RETURN_NOT_OK(file->Sync());
  WEDGE_RETURN_NOT_OK(file->Close());
  return RenameFile(tmp, path);
}

// ---------------------------------------------------------------------------
// PosixEnv
// ---------------------------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(Slice data) override {
    if (file_ == nullptr) return Status::Internal("file closed: " + path_);
    if (data.size() == 0) return Status::OK();
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::Internal("short write: " + path_);
    }
    return Status::OK();
  }

  Status Flush() override {
    if (file_ != nullptr && std::fflush(file_) != 0) {
      return Status::Internal("fflush failed: " + path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    WEDGE_RETURN_NOT_OK(Flush());
    if (file_ != nullptr && ::fsync(::fileno(file_)) != 0) {
      return Status::Internal("fsync failed: " + path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return Status::Internal("fclose failed: " + path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  explicit PosixRandomAccessFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Result<Bytes> Read(uint64_t offset, size_t n) const override {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::Internal("fseek failed: " + path_);
    }
    Bytes out(n);
    const size_t got = std::fread(out.data(), 1, n, file_);
    if (got < n && std::ferror(file_) != 0) {
      return Status::Internal("fread failed: " + path_);
    }
    out.resize(got);
    return out;
  }

  Result<uint64_t> Size() const override {
    std::error_code ec;
    const auto size = fs::file_size(path_, ec);
    if (ec) return Status::Internal("file_size failed: " + path_);
    return static_cast<uint64_t>(size);
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnvImpl : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::Internal("cannot create " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(f, path));
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) return Status::Internal("cannot open " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(f, path));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("cannot open " + path);
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(f, path));
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::is_regular_file(path, ec);
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file()) names.push_back(entry.path().filename());
    }
    if (ec) return Status::NotFound("cannot list " + dir);
    return names;
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) return Status::Internal("cannot create dirs " + dir);
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::NotFound("cannot delete " + path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) return Status::Internal("cannot rename " + from + " -> " + to);
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec) return Status::NotFound("cannot stat " + path);
    return static_cast<uint64_t>(size);
  }
};

}  // namespace

Env* PosixEnv() {
  static PosixEnvImpl* env = new PosixEnvImpl();
  return env;
}

// ---------------------------------------------------------------------------
// MemEnv
// ---------------------------------------------------------------------------

namespace {

std::string DirOf(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? std::string() : path.substr(0, pos);
}

std::string NameOf(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<MemEnv::FileState> state)
      : state_(std::move(state)) {}

  Status Append(Slice data) override {
    state_->data.insert(state_->data.end(), data.data(),
                        data.data() + data.size());
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    state_->synced_size = state_->data.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemEnv::FileState> state_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<MemEnv::FileState> state)
      : state_(std::move(state)) {}

  Result<Bytes> Read(uint64_t offset, size_t n) const override {
    const Bytes& d = state_->data;
    if (offset >= d.size()) return Bytes();
    const size_t got = std::min<size_t>(n, d.size() - offset);
    return Bytes(d.begin() + offset, d.begin() + offset + got);
  }

  Result<uint64_t> Size() const override { return state_->data.size(); }

 private:
  std::shared_ptr<MemEnv::FileState> state_;
};

Result<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path) {
  auto state = std::make_shared<FileState>();
  files_[path] = state;
  return std::unique_ptr<WritableFile>(new MemWritableFile(std::move(state)));
}

Result<std::unique_ptr<WritableFile>> MemEnv::NewAppendableFile(
    const std::string& path) {
  auto it = files_.find(path);
  std::shared_ptr<FileState> state;
  if (it == files_.end()) {
    state = std::make_shared<FileState>();
    files_[path] = state;
  } else {
    state = it->second;
  }
  return std::unique_ptr<WritableFile>(new MemWritableFile(std::move(state)));
}

Result<std::unique_ptr<RandomAccessFile>> MemEnv::NewRandomAccessFile(
    const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return std::unique_ptr<RandomAccessFile>(
      new MemRandomAccessFile(it->second));
}

bool MemEnv::FileExists(const std::string& path) {
  return files_.count(path) > 0;
}

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& [path, state] : files_) {
    if (DirOf(path) == dir) names.push_back(NameOf(path));
  }
  return names;
}

Status MemEnv::CreateDirs(const std::string& dir) {
  dirs_[dir] = true;
  return Status::OK();
}

Status MemEnv::DeleteFile(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Result<uint64_t> MemEnv::FileSize(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second->data.size();
}

void MemEnv::DropUnsynced() {
  for (auto& [path, state] : files_) {
    state->data.resize(state->synced_size);
  }
}

Status MemEnv::CorruptByte(const std::string& path, uint64_t offset) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (offset >= it->second->data.size()) {
    return Status::OutOfRange("corrupt offset beyond file size");
  }
  it->second->data[offset] ^= 0xff;
  return Status::OK();
}

Status MemEnv::TruncateFile(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (size > it->second->data.size()) {
    return Status::OutOfRange("truncate beyond file size");
  }
  it->second->data.resize(size);
  it->second->synced_size = std::min<uint64_t>(it->second->synced_size, size);
  return Status::OK();
}

uint64_t MemEnv::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [path, state] : files_) total += state->data.size();
  return total;
}

}  // namespace wedge
