// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Every persistent record in WedgeChain's storage layer carries a CRC32C
// so that recovery can distinguish a torn tail (expected after a crash)
// from silent media corruption. The implementation is a portable
// software sliced-by-8 table walk; tables are generated at compile time.

#pragma once

#include <cstdint>

#include "common/slice.h"

namespace wedge {

/// CRC of `data` continuing from `crc` (the CRC of some preceding bytes).
uint32_t Crc32cExtend(uint32_t crc, Slice data);

/// CRC of `data` from a fresh state.
inline uint32_t Crc32c(Slice data) { return Crc32cExtend(0, data); }

/// Masks a CRC before embedding it in a file (LevelDB idiom). Storing raw
/// CRCs inside data that is itself CRC-protected makes the outer CRC
/// degenerate; the rotate-and-add mask breaks that structure.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of MaskCrc32c.
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace wedge
