// Manifest: durable record of the LSMerkle tree's level state (the
// RocksDB MANIFEST idiom, shaped to LSMerkle's whole-level merges).
//
// A merge replaces entire levels, so the manifest logs one kLevelPages
// record per changed level plus a kMergeCommit record carrying the new
// epoch, root certificate, and cumulative count of kv blocks consumed
// out of L0. Recovery replays the active manifest; L0 itself is not in
// the manifest — it is rebuilt from the BlockStore (kv blocks beyond the
// consumed count).
//
// Rotation: after `rotate_after_records` appended records, the full tree
// state is snapshotted into a fresh manifest file and the CURRENT
// pointer file is atomically switched, bounding both file size and
// replay time.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lsmerkle/page.h"
#include "lsmerkle/root_certificate.h"
#include "storage/env.h"
#include "storage/record_log.h"

namespace wedge {

struct ManifestOptions {
  /// Snapshot + switch files after this many appended records
  /// (0 = never rotate).
  size_t rotate_after_records = 64;
};

/// The logical LSMerkle state a manifest round-trips.
struct ManifestState {
  /// levels[i] holds level i+1's pages (L0 lives in the BlockStore).
  std::vector<std::vector<Page>> levels;
  Epoch epoch = 0;
  std::optional<RootCertificate> root_cert;
  /// Cumulative kv blocks consumed from L0 by merges since the store was
  /// created. Recovery re-applies kv blocks after this prefix to L0.
  uint64_t l0_blocks_consumed = 0;
};

class Manifest {
 public:
  /// Opens the manifest in `dir`, creating an empty one if absent.
  /// `level_count` is the number of non-L0 levels (LsmConfig levels - 1).
  static Result<std::unique_ptr<Manifest>> Open(Env* env, std::string dir,
                                                size_t level_count,
                                                ManifestOptions options);

  /// Logs a merge: the changed levels' new pages, the new epoch/root
  /// certificate, and the updated cumulative consumed count. Syncs
  /// before returning. `changed_levels` pairs are (level index >= 1,
  /// pages).
  Status LogMerge(
      const std::vector<std::pair<size_t, std::vector<Page>>>& changed_levels,
      const RootCertificate& cert, uint64_t l0_blocks_consumed);

  /// The state as of the last LogMerge (also what recovery would return).
  const ManifestState& state() const { return state_; }

  /// Replays the active manifest in `dir`; an absent manifest yields the
  /// empty state.
  static Result<ManifestState> Recover(Env* env, const std::string& dir,
                                       size_t level_count);

  /// Name of the active manifest file (diagnostics/tests).
  const std::string& active_file() const { return active_name_; }

 private:
  Manifest(Env* env, std::string dir, size_t level_count,
           ManifestOptions options);

  Status WriteSnapshotToNewManifest();
  Status AppendRecord(Slice payload);

  enum RecordTag : uint8_t {
    kLevelPages = 1,   // u32 level, u32 count, pages
    kMergeCommit = 2,  // u64 consumed, bool has_cert, cert
    kSnapshot = 3,     // full ManifestState
  };

  static void EncodeSnapshot(const ManifestState& state, Encoder* enc);
  static Status ApplyRecord(Slice record, size_t level_count,
                            ManifestState* state);

  Env* env_;
  std::string dir_;
  size_t level_count_;
  ManifestOptions options_;
  ManifestState state_;
  std::string active_name_;
  uint64_t next_file_seq_ = 1;
  size_t records_in_active_ = 0;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<RecordLogWriter> writer_;
};

}  // namespace wedge
