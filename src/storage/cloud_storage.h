// CloudStorage: durable storage for the trusted cloud node's per-edge
// registry.
//
// The cloud's whole job is remembering what it certified: one digest per
// (edge, bid) — the agreement guarantee — plus the per-edge LSMerkle
// level-root mirror and epoch it signs merges against, the set of edges
// it has flagged as malicious, and (optionally) full backup blocks. If
// any of that is lost in a cloud restart, equivocation detection silently
// resets and honest restored edges fail merge verification. This module
// makes the registry survive restarts using the same checksummed record
// log as the edge's BlockStore.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "crypto/digest.h"
#include "log/block.h"
#include "storage/env.h"
#include "storage/record_log.h"

namespace wedge {

struct CloudStorageOptions {
  /// Rotate to a new segment file beyond this size (0 = never).
  uint64_t segment_size = 8 * 1024 * 1024;
  /// Sync after every certified digest (the agreement-critical record).
  bool sync_every_digest = true;
};

class CloudStorage {
 public:
  static Result<std::unique_ptr<CloudStorage>> Open(
      Env* env, std::string dir, CloudStorageOptions options);

  /// Records a newly certified digest for (edge, bid).
  Status PersistDigest(NodeId edge, BlockId bid, const Digest256& digest);

  /// Records the level-root mirror + epoch after a merge for `edge`.
  Status PersistMergeState(NodeId edge, Epoch epoch,
                           const std::vector<Digest256>& level_roots);

  /// Records that `edge` was flagged as malicious.
  Status PersistFlagged(NodeId edge);

  /// Records a full backup block for `edge` (cloud backup, §II-A).
  Status PersistBackupBlock(NodeId edge, const Block& block, bool is_kv);

  Status Sync();

  struct EdgeState {
    std::map<BlockId, Digest256> certified;
    std::vector<Digest256> level_roots;
    Epoch epoch = 0;
    /// Backup block bodies by bid, with their kv flags.
    std::map<BlockId, std::pair<Block, bool>> backup;
  };

  struct RecoveredState {
    std::unordered_map<NodeId, EdgeState> edges;
    std::set<NodeId> flagged;
    uint64_t corruption_events = 0;
    uint64_t dropped_bytes = 0;
  };

  /// Replays all segments; later records win (the registry is
  /// last-writer-wins per key, so replay order is the append order).
  static Result<RecoveredState> Recover(Env* env, const std::string& dir);

 private:
  CloudStorage(Env* env, std::string dir, CloudStorageOptions options);

  Status OpenNewSegment();
  Status AppendRecord(Slice payload, bool sync);

  enum RecordTag : uint8_t {
    kDigest = 1,       // edge, bid, digest
    kMergeState = 2,   // edge, epoch, roots
    kFlagged = 3,      // edge
    kBackupBlock = 4,  // edge, is_kv, block
  };

  Env* env_;
  std::string dir_;
  CloudStorageOptions options_;
  uint64_t next_segment_seq_ = 1;
  std::unique_ptr<WritableFile> segment_file_;
  std::unique_ptr<RecordLogWriter> writer_;
};

}  // namespace wedge
