// Env: the storage layer's view of a filesystem (the RocksDB/LevelDB
// idiom). Everything under src/storage talks to an Env, never to the OS
// directly, so the same code runs against:
//
//  * PosixEnv()  — the real filesystem (examples, benches, deployments);
//  * MemEnv     — a deterministic in-memory filesystem for tests, with
//    crash simulation (drop un-synced bytes) and corruption injection.
//
// Paths are plain '/'-separated strings; an Env is not required to
// understand anything more elaborate.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace wedge {

/// A file being written sequentially (append-only).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(Slice data) = 0;

  /// Pushes buffered bytes toward the OS. After Flush, a *process* crash
  /// loses nothing; a machine crash still can.
  virtual Status Flush() = 0;

  /// Durability point: after Sync returns OK the bytes survive a machine
  /// crash (fsync semantics; MemEnv models this for crash simulation).
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

/// A file read at arbitrary offsets.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset`. A short (or empty) result at end
  /// of file is not an error.
  virtual Result<Bytes> Read(uint64_t offset, size_t n) const = 0;

  virtual Result<uint64_t> Size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating) a file for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Opens an existing file (or creates it) positioned at its end.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Names (not paths) of regular files directly inside `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Creates `dir` and any missing parents.
  virtual Status CreateDirs(const std::string& dir) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Whole-file convenience reads/writes.
  Result<Bytes> ReadFileToBytes(const std::string& path);

  /// Durably writes `data` under `path` via write-to-temp + fsync + rename,
  /// so readers never observe a half-written file.
  Status WriteFileAtomic(const std::string& path, Slice data);
};

/// The process-wide real-filesystem Env (never deleted).
Env* PosixEnv();

/// Deterministic in-memory filesystem. Thread-compatible (external
/// synchronization if shared); tests typically own one per fixture.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<uint64_t> FileSize(const std::string& path) override;

  // ---- fault injection (tests only) ----

  /// Simulates a machine crash: every file loses bytes appended after its
  /// last Sync. Open handles become invalid (tests reopen afterwards).
  void DropUnsynced();

  /// Flips one byte at `offset` in `path` (media corruption).
  Status CorruptByte(const std::string& path, uint64_t offset);

  /// Truncates `path` to `size` bytes (torn write / lost tail).
  Status TruncateFile(const std::string& path, uint64_t size);

  /// Total bytes across all files (diagnostics).
  uint64_t TotalBytes() const;

 private:
  struct FileState {
    Bytes data;
    uint64_t synced_size = 0;
  };

  friend class MemWritableFile;
  friend class MemRandomAccessFile;

  std::map<std::string, std::shared_ptr<FileState>> files_;
  std::map<std::string, bool> dirs_;
};

}  // namespace wedge
