#include "storage/crc32c.h"

#include <bit>
#include <cstring>

namespace wedge {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli

struct Crc32cTables {
  uint32_t t[8][256];
};

constexpr Crc32cTables MakeTables() {
  Crc32cTables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tb.t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xff];
    }
  }
  return tb;
}

constexpr Crc32cTables kTables = MakeTables();

inline uint32_t Step(uint32_t c, uint8_t b) {
  return kTables.t[0][(c ^ b) & 0xff] ^ (c >> 8);
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, Slice data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint32_t c = crc ^ 0xffffffffu;

  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint32_t w1;
      uint32_t w2;
      std::memcpy(&w1, p, 4);
      std::memcpy(&w2, p + 4, 4);
      c ^= w1;
      c = kTables.t[7][c & 0xff] ^ kTables.t[6][(c >> 8) & 0xff] ^
          kTables.t[5][(c >> 16) & 0xff] ^ kTables.t[4][c >> 24] ^
          kTables.t[3][w2 & 0xff] ^ kTables.t[2][(w2 >> 8) & 0xff] ^
          kTables.t[1][(w2 >> 16) & 0xff] ^ kTables.t[0][w2 >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    c = Step(c, *p);
    ++p;
    --n;
  }
  return c ^ 0xffffffffu;
}

}  // namespace wedge
