// Record log: the append-only, checksummed record format underlying the
// edge block store and the LSMerkle manifest (the LevelDB/RocksDB WAL
// format).
//
// The file is a sequence of 32 KiB blocks. A record never straddles a
// block boundary raw; instead it is split into fragments, each with its
// own 7-byte header:
//
//     +---------+--------+------+----------------+
//     | crc32c  | length | type |    payload     |
//     | 4 bytes | 2 B    | 1 B  | `length` bytes |
//     +---------+--------+------+----------------+
//
// type: kFull, or kFirst/kMiddle.../kLast for fragmented records. The CRC
// covers type+payload and is stored masked (see crc32c.h). A block's
// trailing <7 bytes are zero-padded.
//
// Recovery semantics: a corrupt fragment causes the reader to resync at
// the next block boundary (dropping the affected record(s) and counting
// them); an incomplete fragment at end of file is a torn tail — treated
// as a clean EOF, because a crash mid-append is expected, not corruption.

#pragma once

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"

namespace wedge {

/// Physical layout constants, shared by writer and reader.
struct RecordLogFormat {
  static constexpr size_t kBlockSize = 32768;
  static constexpr size_t kHeaderSize = 4 + 2 + 1;

  enum RecordType : uint8_t {
    kZero = 0,  // padding / preallocated area
    kFull = 1,
    kFirst = 2,
    kMiddle = 3,
    kLast = 4,
    kMaxRecordType = kLast,
  };
};

/// Appends records to a WritableFile. Not thread-safe.
class RecordLogWriter {
 public:
  /// `dest` must outlive the writer. `initial_size` is the current file
  /// size when appending to an existing log (so block padding stays
  /// aligned); 0 for a fresh file.
  explicit RecordLogWriter(WritableFile* dest, uint64_t initial_size = 0);

  /// Appends one record (possibly fragmenting it across blocks).
  Status AddRecord(Slice payload);

  Status Flush() { return dest_->Flush(); }
  Status Sync() { return dest_->Sync(); }

  /// Bytes emitted so far, including headers and padding.
  uint64_t physical_size() const { return physical_size_; }

 private:
  Status EmitFragment(RecordLogFormat::RecordType type, const uint8_t* data,
                      size_t n);

  WritableFile* dest_;
  size_t block_offset_;      // position within the current 32 KiB block
  uint64_t physical_size_;
};

/// Streams records back from a RandomAccessFile. Not thread-safe.
class RecordLogReader {
 public:
  /// `file` must outlive the reader. When `resync_on_corruption` is true
  /// (the default, used by recovery) a bad fragment skips to the next
  /// block and reading continues; when false the first corruption fails
  /// the read (used by tests asserting clean files).
  explicit RecordLogReader(const RandomAccessFile* file,
                           bool resync_on_corruption = true);

  /// Reads the next record into `*record`. Returns false at (clean or
  /// torn-tail) end of file. Returns a Corruption status only in strict
  /// mode.
  Result<bool> ReadRecord(Bytes* record);

  /// Number of resync events (corrupt fragments skipped).
  size_t corruption_events() const { return corruption_events_; }

  /// Payload bytes dropped due to corruption or a torn tail.
  uint64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  struct Fragment {
    RecordLogFormat::RecordType type;
    Slice payload;  // into buffer_
  };
  enum class FragmentOutcome { kOk, kEof, kBad };

  /// Parses the next physical fragment, refilling buffer_ as needed.
  FragmentOutcome NextFragment(Fragment* frag);

  const RandomAccessFile* file_;
  bool resync_;
  uint64_t file_offset_ = 0;  // offset of the first unread byte in file_
  Bytes buffer_;              // current block's bytes
  size_t buffer_pos_ = 0;
  bool eof_ = false;
  size_t corruption_events_ = 0;
  uint64_t dropped_bytes_ = 0;
};

}  // namespace wedge
