// EdgeStorage: the durable face of an edge node.
//
// Combines a BlockStore (the block log + certificates) and a Manifest
// (LSMerkle level state) under one directory:
//
//     <dir>/wal/blocks-<seq>.log     block + certificate records
//     <dir>/manifest/MANIFEST-<seq>  level snapshots + merge commits
//     <dir>/manifest/CURRENT         active manifest pointer
//
// An EdgeNode with storage attached persists every formed block before
// answering the client (so a Phase I promise survives a crash), logs
// certificates as they arrive, and logs each installed merge. Recover()
// rebuilds the exact EdgeLog and LsmerkleTree the node had at its last
// durable point; RestoreState() hands them back to a fresh EdgeNode.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "log/edge_log.h"
#include "lsmerkle/lsmerkle_tree.h"
#include "storage/block_store.h"
#include "storage/manifest.h"

namespace wedge {

struct EdgeStorageOptions {
  BlockStoreOptions block_store;
  ManifestOptions manifest;
};

class EdgeStorage {
 public:
  /// Opens (creating if needed) the storage under `dir` for a tree with
  /// `lsm_levels` levels (including L0).
  static Result<std::unique_ptr<EdgeStorage>> Open(Env* env, std::string dir,
                                                   size_t lsm_levels,
                                                   EdgeStorageOptions options);

  // ---- write path (EdgeNode hooks) ----

  /// Durably appends a formed block. Called before the add-response is
  /// sent, so a Phase I commitment is never lost to a crash.
  Status PersistBlock(const Block& block, bool is_kv) {
    return blocks_->AppendBlock(block, is_kv);
  }

  /// Records the cloud's block certificate (Phase II evidence).
  Status PersistCertificate(const BlockCertificate& cert) {
    return blocks_->AppendCertificate(cert);
  }

  /// Records an installed merge: the new pages of the changed levels,
  /// the root certificate, and how many kv blocks have now been consumed
  /// from L0 in total since the store was created.
  Status PersistMerge(
      const std::vector<std::pair<size_t, std::vector<Page>>>& changed_levels,
      const RootCertificate& cert, uint64_t l0_blocks_consumed) {
    return manifest_->LogMerge(changed_levels, cert, l0_blocks_consumed);
  }

  uint64_t l0_blocks_consumed() const {
    return manifest_->state().l0_blocks_consumed;
  }

  // ---- recovery ----

  struct RecoveredState {
    EdgeLog log;
    LsmerkleTree tree;
    /// Highest sequence number seen per client, for replay protection.
    std::unordered_map<NodeId, SeqNum> last_seq;
    /// Cumulative kv blocks consumed (continue the counter from here).
    uint64_t l0_blocks_consumed = 0;
    /// Number of kv blocks present in the recovered log (the edge keeps
    /// counting from here to place backup-restored blocks correctly).
    uint64_t blocks_in_log = 0;
    /// How many consumed kv blocks the log no longer holds (a lost tail
    /// under relaxed sync). Their data is safe in the manifest's levels;
    /// the log bodies are only recoverable from the cloud's backup.
    uint64_t log_behind_manifest = 0;
    /// WAL damage observed (0 on a clean shutdown).
    uint64_t corruption_events = 0;
    uint64_t dropped_bytes = 0;
    uint64_t blocks_beyond_gap = 0;

    RecoveredState() : tree(LsmConfig{}) {}
  };

  /// Rebuilds the edge's durable state: replays the block WAL, restores
  /// the LSMerkle levels from the manifest, and re-applies un-merged kv
  /// blocks to L0. A log that ends before the manifest's merge frontier
  /// (possible when blocks are not synced per-append) is tolerated and
  /// reported via log_behind_manifest — the level data is already
  /// durable in the manifest.
  static Result<RecoveredState> Recover(Env* env, const std::string& dir,
                                        const LsmConfig& lsm_config);

  const std::string& dir() const { return dir_; }
  BlockStore* block_store() { return blocks_.get(); }
  Manifest* manifest() { return manifest_.get(); }

 private:
  EdgeStorage(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  std::unique_ptr<BlockStore> blocks_;
  std::unique_ptr<Manifest> manifest_;
};

}  // namespace wedge
