#include "storage/cloud_storage.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "crypto/digest.h"

namespace wedge {

namespace {

constexpr char kSegmentPrefix[] = "cloud-";
constexpr char kSegmentSuffix[] = ".log";

std::string SegmentName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%08" PRIu64 "%s", kSegmentPrefix, seq,
                kSegmentSuffix);
  return buf;
}

uint64_t ParseSegmentName(const std::string& name) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return 0;
  if (name.compare(0, prefix_len, kSegmentPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix_len, suffix_len, kSegmentSuffix) !=
      0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

CloudStorage::CloudStorage(Env* env, std::string dir,
                           CloudStorageOptions options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<CloudStorage>> CloudStorage::Open(
    Env* env, std::string dir, CloudStorageOptions options) {
  WEDGE_RETURN_NOT_OK(env->CreateDirs(dir));
  std::unique_ptr<CloudStorage> store(
      new CloudStorage(env, std::move(dir), options));
  std::vector<std::string> names;
  WEDGE_ASSIGN_OR_RETURN(names, env->ListDir(store->dir_));
  uint64_t max_seq = 0;
  for (const std::string& name : names) {
    max_seq = std::max(max_seq, ParseSegmentName(name));
  }
  store->next_segment_seq_ = max_seq + 1;
  WEDGE_RETURN_NOT_OK(store->OpenNewSegment());
  return store;
}

Status CloudStorage::OpenNewSegment() {
  const std::string path = dir_ + "/" + SegmentName(next_segment_seq_);
  ++next_segment_seq_;
  WEDGE_ASSIGN_OR_RETURN(segment_file_, env_->NewWritableFile(path));
  writer_ = std::make_unique<RecordLogWriter>(segment_file_.get());
  return Status::OK();
}

Status CloudStorage::AppendRecord(Slice payload, bool sync) {
  if (options_.segment_size > 0 &&
      writer_->physical_size() >= options_.segment_size) {
    WEDGE_RETURN_NOT_OK(segment_file_->Sync());
    WEDGE_RETURN_NOT_OK(segment_file_->Close());
    WEDGE_RETURN_NOT_OK(OpenNewSegment());
  }
  WEDGE_RETURN_NOT_OK(writer_->AddRecord(payload));
  return sync ? writer_->Sync() : writer_->Flush();
}

Status CloudStorage::PersistDigest(NodeId edge, BlockId bid,
                                   const Digest256& digest) {
  Encoder enc;
  enc.PutU8(kDigest);
  enc.PutU32(edge);
  enc.PutU64(bid);
  digest.EncodeTo(&enc);
  return AppendRecord(enc.buffer(), options_.sync_every_digest);
}

Status CloudStorage::PersistMergeState(
    NodeId edge, Epoch epoch, const std::vector<Digest256>& level_roots) {
  Encoder enc;
  enc.PutU8(kMergeState);
  enc.PutU32(edge);
  enc.PutU64(epoch);
  enc.PutU32(static_cast<uint32_t>(level_roots.size()));
  for (const auto& r : level_roots) r.EncodeTo(&enc);
  // A merge is only signed once durable: a cloud that signed a root and
  // then forgot it would reject the honest edge's next merge.
  return AppendRecord(enc.buffer(), /*sync=*/true);
}

Status CloudStorage::PersistFlagged(NodeId edge) {
  Encoder enc;
  enc.PutU8(kFlagged);
  enc.PutU32(edge);
  // Punishments must stick across restarts (§II-D assumption 2).
  return AppendRecord(enc.buffer(), /*sync=*/true);
}

Status CloudStorage::PersistBackupBlock(NodeId edge, const Block& block,
                                        bool is_kv) {
  Encoder enc;
  enc.PutU8(kBackupBlock);
  enc.PutU32(edge);
  enc.PutBool(is_kv);
  block.EncodeTo(&enc);
  return AppendRecord(enc.buffer(), /*sync=*/false);
}

Status CloudStorage::Sync() { return writer_->Sync(); }

Result<CloudStorage::RecoveredState> CloudStorage::Recover(
    Env* env, const std::string& dir) {
  std::vector<std::string> names;
  WEDGE_ASSIGN_OR_RETURN(names, env->ListDir(dir));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    const uint64_t seq = ParseSegmentName(name);
    if (seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());

  RecoveredState out;
  for (const uint64_t seq : seqs) {
    std::unique_ptr<RandomAccessFile> file;
    WEDGE_ASSIGN_OR_RETURN(
        file, env->NewRandomAccessFile(dir + "/" + SegmentName(seq)));
    RecordLogReader reader(file.get());

    Bytes record;
    while (true) {
      auto more = reader.ReadRecord(&record);
      if (!more.ok()) return more.status();
      if (!*more) break;

      Decoder dec{Slice(record)};
      uint8_t tag = 0;
      WEDGE_ASSIGN_OR_RETURN(tag, dec.GetU8());
      switch (tag) {
        case kDigest: {
          NodeId edge = 0;
          BlockId bid = 0;
          WEDGE_ASSIGN_OR_RETURN(edge, dec.GetU32());
          WEDGE_ASSIGN_OR_RETURN(bid, dec.GetU64());
          Digest256 digest;
          WEDGE_ASSIGN_OR_RETURN(digest, Digest256::DecodeFrom(&dec));
          WEDGE_RETURN_NOT_OK(dec.ExpectDone());
          out.edges[edge].certified[bid] = digest;
          break;
        }
        case kMergeState: {
          NodeId edge = 0;
          Epoch epoch = 0;
          uint32_t n = 0;
          WEDGE_ASSIGN_OR_RETURN(edge, dec.GetU32());
          WEDGE_ASSIGN_OR_RETURN(epoch, dec.GetU64());
          WEDGE_ASSIGN_OR_RETURN(n, dec.GetU32());
          std::vector<Digest256> roots;
          roots.reserve(std::min<size_t>(n, dec.remaining()));
          for (uint32_t i = 0; i < n; ++i) {
            Digest256 r;
            WEDGE_ASSIGN_OR_RETURN(r, Digest256::DecodeFrom(&dec));
            roots.push_back(r);
          }
          WEDGE_RETURN_NOT_OK(dec.ExpectDone());
          auto& state = out.edges[edge];
          state.epoch = epoch;
          state.level_roots = std::move(roots);
          break;
        }
        case kFlagged: {
          NodeId edge = 0;
          WEDGE_ASSIGN_OR_RETURN(edge, dec.GetU32());
          WEDGE_RETURN_NOT_OK(dec.ExpectDone());
          out.flagged.insert(edge);
          break;
        }
        case kBackupBlock: {
          NodeId edge = 0;
          bool is_kv = false;
          WEDGE_ASSIGN_OR_RETURN(edge, dec.GetU32());
          WEDGE_ASSIGN_OR_RETURN(is_kv, dec.GetBool());
          auto block = Block::DecodeFrom(&dec);
          if (!block.ok()) return block.status();
          WEDGE_RETURN_NOT_OK(dec.ExpectDone());
          const BlockId bid = block->id;
          out.edges[edge].backup[bid] = {std::move(*block), is_kv};
          break;
        }
        default:
          return Status::Corruption("unknown cloud-storage record tag " +
                                    std::to_string(tag));
      }
    }
    out.corruption_events += reader.corruption_events();
    out.dropped_bytes += reader.dropped_bytes();
  }
  return out;
}

}  // namespace wedge
