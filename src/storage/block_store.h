// BlockStore: durable storage for an edge node's block log.
//
// Blocks and their cloud certificates are appended as typed records to
// rotating record-log segments (`blocks-<seq>.log`). Recovery replays
// all segments in order, rebuilding the EdgeLog (blocks + Phase II
// certificates) and the per-block kv flags the LSMerkle rebuild needs.
//
// Durability contract: PersistBlock syncs before returning when
// `sync_every_block` is set (the default), so a block that was Phase I
// committed to a client survives an edge crash — the edge can honour
// read requests for it after restart instead of being punished for an
// omission it did not intend.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "log/block.h"
#include "log/certificate.h"
#include "log/edge_log.h"
#include "storage/env.h"
#include "storage/record_log.h"

namespace wedge {

struct BlockStoreOptions {
  /// Rotate to a new segment file once the current one exceeds this many
  /// bytes (0 = never rotate).
  uint64_t segment_size = 4 * 1024 * 1024;
  /// Sync after every appended block (certificates are flushed but only
  /// synced opportunistically — they can be re-fetched from the cloud).
  bool sync_every_block = true;
};

class BlockStore {
 public:
  /// Opens (creating if needed) the store in `dir`. Any existing
  /// segments are retained; new records append to a fresh segment.
  static Result<std::unique_ptr<BlockStore>> Open(Env* env, std::string dir,
                                                  BlockStoreOptions options);

  /// Appends a block record. `is_kv` distinguishes key-value blocks
  /// (which feed LSMerkle L0 on recovery) from raw log blocks.
  Status AppendBlock(const Block& block, bool is_kv);

  /// Appends the cloud's certificate for a previously appended block.
  Status AppendCertificate(const BlockCertificate& cert);

  Status Sync();

  /// Everything recovery learned from the segments.
  struct Recovered {
    EdgeLog log;
    /// is_kv flag per block id (index == block id). Advisory/diagnostic
    /// only: kv-ness is content-defined at apply time, and every block
    /// occupies an L0 slot regardless.
    std::vector<bool> kv_flags;
    /// Records dropped by WAL resync (torn tails, corruption).
    uint64_t corruption_events = 0;
    uint64_t dropped_bytes = 0;
    /// Blocks discarded because an earlier block was lost (the log is
    /// replayed with prefix semantics: it ends at the first gap).
    uint64_t blocks_beyond_gap = 0;
  };

  /// Replays all segments in `dir` with prefix semantics: blocks apply
  /// in order until the first gap (a lost record leaves later blocks
  /// unreachable, as in any WAL); certificates attach to their blocks.
  /// Unknown record tags fail recovery (forward-incompatible file).
  static Result<Recovered> Recover(Env* env, const std::string& dir);

  /// Number of segment files currently on disk.
  Result<size_t> SegmentCount() const;

  const std::string& dir() const { return dir_; }

 private:
  BlockStore(Env* env, std::string dir, BlockStoreOptions options);

  Status OpenNewSegment();
  Status AppendRecord(Slice payload, bool sync);

  // Record tags (first byte of every record payload).
  enum RecordTag : uint8_t {
    kBlockRecord = 1,
    kCertRecord = 2,
  };

  Env* env_;
  std::string dir_;
  BlockStoreOptions options_;
  uint64_t next_segment_seq_ = 1;
  std::unique_ptr<WritableFile> segment_file_;
  std::unique_ptr<RecordLogWriter> writer_;
};

}  // namespace wedge
